//! The executor must agree with brute-force reference evaluation on the
//! naive lowering of random einsums over random sparse/dense inputs.

use std::collections::HashMap;

use proptest::prelude::*;
use systec_exec::{alloc_outputs, reference::reference_einsum, run};
use systec_ir::build::*;
use systec_ir::{AssignOp, Einsum};
use systec_tensor::{CooTensor, DenseTensor, LevelFormat, SparseTensor, Tensor};

fn sparse_matrix(n: usize, entries: &[(usize, usize, f64)], fmts: &[LevelFormat]) -> Tensor {
    let mut coo = CooTensor::new(vec![n, n]);
    for &(i, j, v) in entries {
        if i < n && j < n {
            coo.set(&[i, j], v);
        }
    }
    Tensor::Sparse(SparseTensor::from_coo(&coo, fmts).unwrap())
}

fn entries_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, 0.25f64..4.0), 0..=(n * n).min(14))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spmv_matches_reference(n in 2usize..6, entries in entries_strategy(5), xs in prop::collection::vec(0.0f64..3.0, 6)) {
        let einsum = Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("j")],
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), sparse_matrix(n, &entries, &[LevelFormat::Dense, LevelFormat::Sparse]));
        inputs.insert("x".to_string(), Tensor::Dense(DenseTensor::from_vec(vec![n], xs[..n].to_vec()).unwrap()));
        let expected = reference_einsum(&einsum, &inputs).unwrap();
        let prog = einsum.naive_program();
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        run(&prog, &inputs, &mut outputs).unwrap();
        prop_assert!(outputs["y"].max_abs_diff(&expected).unwrap() < 1e-10);
    }

    #[test]
    fn spmv_all_sparse_format_matches_reference(n in 2usize..6, entries in entries_strategy(5)) {
        let einsum = Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("j")],
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), sparse_matrix(n, &entries, &[LevelFormat::Sparse, LevelFormat::Sparse]));
        inputs.insert("x".to_string(), Tensor::Dense(DenseTensor::filled(vec![n], 1.5)));
        let expected = reference_einsum(&einsum, &inputs).unwrap();
        let prog = einsum.naive_program();
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        run(&prog, &inputs, &mut outputs).unwrap();
        prop_assert!(outputs["y"].max_abs_diff(&expected).unwrap() < 1e-10);
    }

    #[test]
    fn discordant_order_matches_reference(n in 2usize..6, entries in entries_strategy(5)) {
        // Loop order (j, i) over a row-major CSR A forces random access.
        let einsum = Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("j"), idx("i")],
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), sparse_matrix(n, &entries, &[LevelFormat::Dense, LevelFormat::Sparse]));
        inputs.insert("x".to_string(), Tensor::Dense(DenseTensor::filled(vec![n], 2.0)));
        let expected = reference_einsum(&einsum, &inputs).unwrap();
        let prog = einsum.naive_program();
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        run(&prog, &inputs, &mut outputs).unwrap();
        prop_assert!(outputs["y"].max_abs_diff(&expected).unwrap() < 1e-10);
    }

    #[test]
    fn min_plus_matches_reference(n in 2usize..6, entries in entries_strategy(5), ds in prop::collection::vec(0.0f64..9.0, 6)) {
        let einsum = Einsum::new(
            access("y", ["i"]),
            AssignOp::Min,
            add([access("A", ["i", "j"]), access("d", ["j"])]),
            [idx("i"), idx("j")],
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), sparse_matrix(n, &entries, &[LevelFormat::Dense, LevelFormat::Sparse]));
        inputs.insert("d".to_string(), Tensor::Dense(DenseTensor::from_vec(vec![n], ds[..n].to_vec()).unwrap()));
        let expected = reference_einsum(&einsum, &inputs).unwrap();
        let prog = einsum.naive_program();
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        run(&prog, &inputs, &mut outputs).unwrap();
        prop_assert!(outputs["y"].max_abs_diff(&expected).unwrap() < 1e-10);
    }

    #[test]
    fn three_tensor_product_matches_reference(n in 2usize..5, entries in entries_strategy(4), xs in prop::collection::vec(0.1f64..2.0, 5)) {
        // SYPRD: s[] += x[i] * A[i, j] * x[j]
        let einsum = Einsum::new(
            access("s", [] as [&str; 0]),
            AssignOp::Add,
            mul([access("x", ["i"]), access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("j")],
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), sparse_matrix(n, &entries, &[LevelFormat::Dense, LevelFormat::Sparse]));
        inputs.insert("x".to_string(), Tensor::Dense(DenseTensor::from_vec(vec![n], xs[..n].to_vec()).unwrap()));
        let expected = reference_einsum(&einsum, &inputs).unwrap();
        let prog = einsum.naive_program();
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        run(&prog, &inputs, &mut outputs).unwrap();
        prop_assert!((outputs["s"].get(&[]) - expected.get(&[])).abs() < 1e-10);
    }

    #[test]
    fn csf3_contraction_matches_reference(n in 2usize..4, triples in prop::collection::vec((0usize..3, 0usize..3, 0usize..3, 0.25f64..2.0), 0..10)) {
        // C[i, j] += A[i, k, l] * B[k, j] * B[l, j]  (3-d MTTKRP shape)
        let mut coo = CooTensor::new(vec![n, n, n]);
        for &(i, k, l, v) in &triples {
            if i < n && k < n && l < n {
                coo.set(&[i, k, l], v);
            }
        }
        let a = Tensor::Sparse(SparseTensor::from_coo(&coo, &systec_tensor::csf(3)).unwrap());
        let b = Tensor::Dense(DenseTensor::filled(vec![n, 2], 0.5));
        let einsum = Einsum::new(
            access("C", ["i", "j"]),
            AssignOp::Add,
            mul([access("A", ["i", "k", "l"]), access("B", ["k", "j"]), access("B", ["l", "j"])]),
            [idx("i"), idx("k"), idx("l"), idx("j")],
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), a);
        inputs.insert("B".to_string(), b);
        let expected = reference_einsum(&einsum, &inputs).unwrap();
        let prog = einsum.naive_program();
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        run(&prog, &inputs, &mut outputs).unwrap();
        prop_assert!(outputs["C"].max_abs_diff(&expected).unwrap() < 1e-10);
    }
}
