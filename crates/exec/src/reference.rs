//! Brute-force reference evaluation of einsums, for validation.
//!
//! Every kernel in the test suite — naive, symmetrized, optimized,
//! baseline — is checked against this evaluator on random inputs. It
//! iterates the *full* cartesian index space with no sparsity or symmetry
//! tricks, so it is slow and trustworthy.

use std::collections::HashMap;

use systec_ir::{AssignOp, Einsum, Expr, Index};
use systec_tensor::{DenseTensor, Tensor};

use crate::ExecError;

/// Evaluates an einsum by brute force over the full index space,
/// returning the dense output.
///
/// For `min=`/`max=` reductions, unstored coordinates of *sparse* inputs
/// are treated as the reduction identity (the tropical fill convention,
/// matching Finch's `Element(Inf)` and our executor's driver semantics);
/// for `+=`, unstored reads are `0.0` and annihilate products naturally.
///
/// # Errors
///
/// Returns an [`ExecError`] for unbound tensors, rank mismatches, or
/// conflicting extents.
///
/// # Panics
///
/// Panics if the einsum's right-hand side references `let`-bound scalars
/// (einsum inputs never do).
pub fn reference_einsum(
    einsum: &Einsum,
    inputs: &HashMap<String, Tensor>,
) -> Result<DenseTensor, ExecError> {
    // Infer extents.
    let mut extents: HashMap<Index, usize> = HashMap::new();
    let mut rhs_accesses = einsum.rhs.accesses();
    rhs_accesses.sort_by_key(|a| a.tensor.display_name());
    for access in &rhs_accesses {
        let name = access.tensor.display_name();
        let tensor = inputs.get(&name).ok_or(ExecError::UnknownTensor { name: name.clone() })?;
        if tensor.rank() != access.indices.len() {
            return Err(ExecError::AccessRankMismatch {
                name,
                rank: tensor.rank(),
                subscripts: access.indices.len(),
            });
        }
        for (mode, index) in access.indices.iter().enumerate() {
            let extent = tensor.dims()[mode];
            match extents.get(index) {
                Some(&prev) if prev != extent => {
                    return Err(ExecError::ExtentMismatch {
                        index: index.clone(),
                        a: prev,
                        b: extent,
                    })
                }
                _ => {
                    extents.insert(index.clone(), extent);
                }
            }
        }
    }
    let out_dims: Result<Vec<usize>, ExecError> = einsum
        .output
        .indices
        .iter()
        .map(|i| {
            extents.get(i).copied().ok_or_else(|| ExecError::UnknownExtent { index: i.clone() })
        })
        .collect();
    let init = einsum.op.identity().unwrap_or(0.0);
    let mut out = DenseTensor::filled(out_dims?, init);

    let order = &einsum.loop_order;
    let sizes: Result<Vec<usize>, ExecError> = order
        .iter()
        .map(|i| {
            extents.get(i).copied().ok_or_else(|| ExecError::UnknownExtent { index: i.clone() })
        })
        .collect();
    let sizes = sizes?;
    if sizes.contains(&0) {
        return Ok(out);
    }

    let tropical = matches!(einsum.op, AssignOp::Min | AssignOp::Max);
    let mut env: HashMap<Index, usize> = order.iter().map(|i| (i.clone(), 0)).collect();
    let mut coords = vec![0usize; order.len()];
    'space: loop {
        for (k, i) in order.iter().enumerate() {
            env.insert(i.clone(), coords[k]);
        }
        // Tropical fill: skip when a sparse access is unstored.
        let skip = tropical
            && einsum.rhs.accesses().iter().any(|a| {
                let name = a.tensor.display_name();
                match &inputs[&name] {
                    Tensor::Sparse(s) => {
                        let c: Vec<usize> = a.indices.iter().map(|i| env[i]).collect();
                        !is_stored(s, &c)
                    }
                    Tensor::Dense(_) => false,
                }
            });
        if !skip {
            let v = eval(&einsum.rhs, inputs, &env);
            let out_coords: Vec<usize> = einsum.output.indices.iter().map(|i| env[i]).collect();
            let cell = out.get_mut(&out_coords);
            *cell = einsum.op.apply(*cell, v);
        }
        // Odometer.
        let mut k = order.len();
        loop {
            if k == 0 {
                break 'space;
            }
            k -= 1;
            coords[k] += 1;
            if coords[k] < sizes[k] {
                break;
            }
            coords[k] = 0;
        }
    }
    Ok(out)
}

fn is_stored(s: &systec_tensor::SparseTensor, coords: &[usize]) -> bool {
    let mut pos = 0usize;
    for (level, &c) in coords.iter().enumerate() {
        match s.level_find(level, pos, c) {
            Some(next) => pos = next,
            None => return false,
        }
    }
    true
}

fn eval(expr: &Expr, inputs: &HashMap<String, Tensor>, env: &HashMap<Index, usize>) -> f64 {
    match expr {
        Expr::Literal(v) => *v,
        Expr::Scalar(name) => panic!("reference evaluation does not support scalars ({name})"),
        Expr::Access(a) => {
            let name = a.tensor.display_name();
            let coords: Vec<usize> = a.indices.iter().map(|i| env[i]).collect();
            inputs[&name].get(&coords)
        }
        Expr::Call { op, args } => {
            let mut it = args.iter();
            let mut acc = eval(it.next().expect("nonempty call"), inputs, env);
            for arg in it {
                acc = op.apply(acc, eval(arg, inputs, env));
            }
            acc
        }
        Expr::CmpVal { op, lhs, rhs } => {
            if op.eval(env[lhs], env[rhs]) {
                1.0
            } else {
                0.0
            }
        }
        Expr::Lookup { table, index } => {
            let i = eval(index, inputs, env) as usize;
            table.get(i).copied().unwrap_or(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;
    use systec_tensor::{CooTensor, SparseTensor, CSR};

    fn setup() -> HashMap<String, Tensor> {
        let mut coo = CooTensor::new(vec![3, 3]);
        coo.push(&[0, 1], 2.0);
        coo.push(&[1, 2], 3.0);
        coo.push(&[2, 2], 4.0);
        let mut m = HashMap::new();
        m.insert("A".to_string(), Tensor::Sparse(SparseTensor::from_coo(&coo, &CSR).unwrap()));
        m.insert(
            "x".to_string(),
            Tensor::Dense(DenseTensor::from_vec(vec![3], vec![1.0, 10.0, 100.0]).unwrap()),
        );
        m
    }

    #[test]
    fn reference_spmv() {
        let e = Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("j"), idx("i")],
        );
        let y = reference_einsum(&e, &setup()).unwrap();
        assert_eq!(y.get(&[0]), 20.0);
        assert_eq!(y.get(&[1]), 300.0);
        assert_eq!(y.get(&[2]), 400.0);
    }

    #[test]
    fn reference_scalar_output() {
        // s[] += A[i, j] — sums all entries.
        let e = Einsum::new(
            access("s", [] as [&str; 0]),
            AssignOp::Add,
            access("A", ["i", "j"]).into(),
            [idx("j"), idx("i")],
        );
        let s = reference_einsum(&e, &setup()).unwrap();
        assert_eq!(s.get(&[]), 9.0);
    }

    #[test]
    fn reference_min_plus_uses_tropical_fill() {
        let e = Einsum::new(
            access("y", ["i"]),
            AssignOp::Min,
            add([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("j"), idx("i")],
        );
        let y = reference_einsum(&e, &setup()).unwrap();
        assert_eq!(y.get(&[0]), 12.0); // A[0,1] + x[1]
        assert_eq!(y.get(&[1]), 103.0); // A[1,2] + x[2]
        assert_eq!(y.get(&[2]), 104.0);
    }

    #[test]
    fn reference_rejects_unknown_tensor() {
        let e = Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            access("missing", ["i"]).into(),
            [idx("i")],
        );
        assert!(matches!(reference_einsum(&e, &setup()), Err(ExecError::UnknownTensor { .. })));
    }
}
