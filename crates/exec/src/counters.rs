//! Instrumentation counters collected during execution.

use std::collections::HashMap;
use std::fmt;

/// Work counters collected by one [`crate::run`] call.
///
/// These are the quantities the paper's analysis reasons about: SSYMV's
/// optimized kernel *"accesses only 1/2 of the values of A"* (§5.2.1), the
/// 5-d MTTKRP touches *"1/120 of the values of A"* and performs *"1/24 of
/// the computations"* (§5.2.6). The integration tests assert those ratios
/// exactly, and the benchmark harness reports them alongside times.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Counters {
    /// Tensor element loads, per tensor display name.
    pub reads: HashMap<String, u64>,
    /// Semiring operations (one per binary application, plus one per
    /// reducing assignment).
    pub flops: u64,
    /// Output element stores.
    pub writes: u64,
    /// Innermost loop-body executions.
    pub iterations: u64,
}

impl Counters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Element loads of one tensor (0 if never read).
    pub fn reads_of(&self, name: &str) -> u64 {
        self.reads.get(name).copied().unwrap_or(0)
    }

    /// Total element loads over tensors whose display name starts with
    /// `prefix` — aggregates a base tensor with its derived variants
    /// (`A`, `A_T`, `A_diag`, `A_nondiag`, …).
    pub fn reads_of_family(&self, prefix: &str) -> u64 {
        self.reads
            .iter()
            .filter(|(name, _)| {
                name.as_str() == prefix
                    || name.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('_'))
            })
            .map(|(_, v)| v)
            .sum()
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (name, v) in &other.reads {
            *self.reads.entry(name.clone()).or_insert(0) += v;
        }
        self.flops += other.flops;
        self.writes += other.writes;
        self.iterations += other.iterations;
    }
}

/// A slot-indexed counter accumulator for one execution worker.
///
/// Backends that know their tensors by flat slot index (the bytecode VM)
/// accumulate into a bank — no name hashing on the hot path — and
/// materialize a [`Counters`] at the end. Parallel backends give every
/// worker its own bank and [`CounterBank::merge`] them **in a fixed
/// worker order** when the workers join: counts are integers, so the
/// merged totals equal the serial execution's counters exactly, which is
/// what keeps the paper's read/FLOP parity claims checkable under
/// row-parallel execution.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CounterBank {
    /// Element loads, indexed by tensor slot.
    pub reads: Vec<u64>,
    /// Semiring operations.
    pub flops: u64,
    /// Output element stores.
    pub writes: u64,
    /// Innermost loop-body executions.
    pub iterations: u64,
}

impl CounterBank {
    /// A zeroed bank with one read counter per tensor slot.
    pub fn with_slots(n_slots: usize) -> Self {
        CounterBank { reads: vec![0; n_slots], flops: 0, writes: 0, iterations: 0 }
    }

    /// Rezeroes the bank for `n_slots` tensor slots, reusing the
    /// allocation (no allocation once capacity has been reached).
    pub fn reset(&mut self, n_slots: usize) {
        self.reads.clear();
        self.reads.resize(n_slots, 0);
        self.flops = 0;
        self.writes = 0;
        self.iterations = 0;
    }

    /// Accumulates another bank into this one. Call in a fixed worker
    /// order so merged results are deterministic run to run.
    ///
    /// # Panics
    ///
    /// Panics if the banks track a different number of slots.
    pub fn merge(&mut self, other: &CounterBank) {
        assert_eq!(self.reads.len(), other.reads.len(), "banks must cover the same slots");
        for (a, b) in self.reads.iter_mut().zip(&other.reads) {
            *a += b;
        }
        self.flops += other.flops;
        self.writes += other.writes;
        self.iterations += other.iterations;
    }

    /// Writes the bank's totals into `out` **in place**, given the
    /// display name of each slot. Steady-state reuse of one `Counters`
    /// value is allocation-free: existing entries are overwritten,
    /// entries are only inserted the first time a slot's name appears,
    /// and zero-count leftovers (from a previous program run through the
    /// same `Counters`) are dropped without reallocating.
    pub fn write_to<'a>(&self, names: impl IntoIterator<Item = &'a str>, out: &mut Counters) {
        for v in out.reads.values_mut() {
            *v = 0;
        }
        for (slot, name) in names.into_iter().enumerate() {
            let count = self.reads.get(slot).copied().unwrap_or(0);
            if let Some(v) = out.reads.get_mut(name) {
                *v = count;
            } else if count > 0 {
                out.reads.insert(name.to_string(), count);
            }
        }
        out.reads.retain(|_, v| *v > 0);
        out.flops = self.flops;
        out.writes = self.writes;
        out.iterations = self.iterations;
    }

    /// Materializes a fresh [`Counters`] from the bank.
    pub fn to_counters<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> Counters {
        let mut out = Counters::new();
        self.write_to(names, &mut out);
        out
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&String> = self.reads.keys().collect();
        names.sort();
        write!(
            f,
            "flops={} writes={} iterations={} reads={{",
            self.flops, self.writes, self.iterations
        )?;
        for (k, name) in names.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {}", self.reads[*name])?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_of_family_aggregates_variants() {
        let mut c = Counters::new();
        c.reads.insert("A".into(), 10);
        c.reads.insert("A_diag".into(), 3);
        c.reads.insert("A_nondiag".into(), 5);
        c.reads.insert("AB".into(), 100); // different base name, not a variant
        assert_eq!(c.reads_of_family("A"), 18);
        assert_eq!(c.reads_of("A"), 10);
        assert_eq!(c.reads_of("missing"), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counters::new();
        a.reads.insert("A".into(), 1);
        a.flops = 2;
        let mut b = Counters::new();
        b.reads.insert("A".into(), 3);
        b.reads.insert("B".into(), 4);
        b.writes = 5;
        a.merge(&b);
        assert_eq!(a.reads_of("A"), 4);
        assert_eq!(a.reads_of("B"), 4);
        assert_eq!(a.flops, 2);
        assert_eq!(a.writes, 5);
    }

    #[test]
    fn display_is_nonempty() {
        let c = Counters::new();
        assert!(c.to_string().contains("flops=0"));
    }

    #[test]
    fn bank_merge_equals_serial_totals() {
        let mut serial = CounterBank::with_slots(2);
        serial.reads = vec![7, 3];
        serial.flops = 10;
        serial.writes = 4;
        serial.iterations = 9;
        // Split the same work across two workers; merging recovers it.
        let mut w0 = CounterBank::with_slots(2);
        w0.reads = vec![5, 1];
        w0.flops = 6;
        w0.writes = 3;
        w0.iterations = 4;
        let mut w1 = CounterBank::with_slots(2);
        w1.reads = vec![2, 2];
        w1.flops = 4;
        w1.writes = 1;
        w1.iterations = 5;
        let mut merged = CounterBank::with_slots(2);
        merged.merge(&w0);
        merged.merge(&w1);
        assert_eq!(merged, serial);
    }

    #[test]
    fn bank_write_to_is_idempotent_and_drops_stale_keys() {
        let mut bank = CounterBank::with_slots(2);
        bank.reads = vec![4, 0];
        bank.flops = 2;
        let mut out = Counters::new();
        // A stale entry from a previous program through the same value.
        out.reads.insert("old".into(), 11);
        bank.write_to(["A", "x"], &mut out);
        assert_eq!(out.reads_of("A"), 4);
        assert_eq!(out.reads_of("old"), 0);
        assert!(!out.reads.contains_key("old"), "stale keys must be dropped");
        assert!(!out.reads.contains_key("x"), "zero-count slots are not materialized");
        let first = out.clone();
        bank.write_to(["A", "x"], &mut out);
        assert_eq!(out, first);
        assert_eq!(out, bank.to_counters(["A", "x"]));
    }

    #[test]
    fn bank_reset_reuses_allocation() {
        let mut bank = CounterBank::with_slots(3);
        bank.reads[1] = 5;
        bank.flops = 1;
        let ptr = bank.reads.as_ptr();
        bank.reset(3);
        assert_eq!(bank, CounterBank::with_slots(3));
        assert_eq!(bank.reads.as_ptr(), ptr, "reset must not reallocate");
    }
}
