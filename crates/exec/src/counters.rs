//! Instrumentation counters collected during execution.

use std::collections::HashMap;
use std::fmt;

/// Work counters collected by one [`crate::run`] call.
///
/// These are the quantities the paper's analysis reasons about: SSYMV's
/// optimized kernel *"accesses only 1/2 of the values of A"* (§5.2.1), the
/// 5-d MTTKRP touches *"1/120 of the values of A"* and performs *"1/24 of
/// the computations"* (§5.2.6). The integration tests assert those ratios
/// exactly, and the benchmark harness reports them alongside times.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Counters {
    /// Tensor element loads, per tensor display name.
    pub reads: HashMap<String, u64>,
    /// Semiring operations (one per binary application, plus one per
    /// reducing assignment).
    pub flops: u64,
    /// Output element stores.
    pub writes: u64,
    /// Innermost loop-body executions.
    pub iterations: u64,
}

impl Counters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Element loads of one tensor (0 if never read).
    pub fn reads_of(&self, name: &str) -> u64 {
        self.reads.get(name).copied().unwrap_or(0)
    }

    /// Total element loads over tensors whose display name starts with
    /// `prefix` — aggregates a base tensor with its derived variants
    /// (`A`, `A_T`, `A_diag`, `A_nondiag`, …).
    pub fn reads_of_family(&self, prefix: &str) -> u64 {
        self.reads
            .iter()
            .filter(|(name, _)| {
                name.as_str() == prefix
                    || name.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('_'))
            })
            .map(|(_, v)| v)
            .sum()
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (name, v) in &other.reads {
            *self.reads.entry(name.clone()).or_insert(0) += v;
        }
        self.flops += other.flops;
        self.writes += other.writes;
        self.iterations += other.iterations;
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&String> = self.reads.keys().collect();
        names.sort();
        write!(
            f,
            "flops={} writes={} iterations={} reads={{",
            self.flops, self.writes, self.iterations
        )?;
        for (k, name) in names.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {}", self.reads[*name])?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_of_family_aggregates_variants() {
        let mut c = Counters::new();
        c.reads.insert("A".into(), 10);
        c.reads.insert("A_diag".into(), 3);
        c.reads.insert("A_nondiag".into(), 5);
        c.reads.insert("AB".into(), 100); // different base name, not a variant
        assert_eq!(c.reads_of_family("A"), 18);
        assert_eq!(c.reads_of("A"), 10);
        assert_eq!(c.reads_of("missing"), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counters::new();
        a.reads.insert("A".into(), 1);
        a.flops = 2;
        let mut b = Counters::new();
        b.reads.insert("A".into(), 3);
        b.reads.insert("B".into(), 4);
        b.writes = 5;
        a.merge(&b);
        assert_eq!(a.reads_of("A"), 4);
        assert_eq!(a.reads_of("B"), 4);
        assert_eq!(a.flops, 2);
        assert_eq!(a.writes, 5);
    }

    #[test]
    fn display_is_nonempty() {
        let c = Counters::new();
        assert!(c.to_string().contains("flops=0"));
    }
}
