//! Data preparation: output allocation and input-variant materialization.
//!
//! The paper's timing methodology excludes *"the time to rearrange data
//! before or after each kernel … including transposition or replicating
//! the output"* (§5.2). These helpers are that rearrangement step: the
//! benchmark harness calls them once, outside the timed region.

use std::collections::HashMap;

use systec_ir::{Access, AssignOp, Lhs, Stmt, TensorPart, TensorRef};
use systec_tensor::{DenseTensor, SparseTensor, Tensor, TensorError};

use crate::ExecError;

/// Allocates the output tensors a program writes: shapes are inferred
/// from the program's accesses against `inputs`, and each output is
/// initialized to its reduction's identity (`0` for `+=`, `+∞` for
/// `min=`, `-∞` for `max=`).
///
/// Callers that need a different initialization (e.g. Bellman-Ford's
/// `y = d` warm start) can overwrite the returned tensors before
/// [`crate::run`].
///
/// # Errors
///
/// Returns an [`ExecError`] if shapes conflict or an output index's
/// extent cannot be inferred from any input access.
pub fn alloc_outputs(
    stmt: &Stmt,
    inputs: &HashMap<String, Tensor>,
) -> Result<HashMap<String, DenseTensor>, ExecError> {
    let mut extents: HashMap<systec_ir::Index, usize> = HashMap::new();
    let mut targets: Vec<(Access, AssignOp)> = Vec::new();
    collect(stmt, &mut |access, write_op| {
        let name = access.tensor.display_name();
        if let Some(t) = inputs.get(&name) {
            for (mode, index) in access.indices.iter().enumerate() {
                extents.entry(index.clone()).or_insert(t.dims()[mode]);
            }
        }
        if let Some(op) = write_op {
            targets.push((access.clone(), op));
        }
    });
    // Validate input extents for conflicts.
    let mut checked: HashMap<systec_ir::Index, usize> = HashMap::new();
    let mut conflict: Option<ExecError> = None;
    collect(stmt, &mut |access, _| {
        let name = access.tensor.display_name();
        if let Some(t) = inputs.get(&name) {
            for (mode, index) in access.indices.iter().enumerate() {
                let extent = t.dims()[mode];
                match checked.get(index) {
                    Some(&prev) if prev != extent && conflict.is_none() => {
                        conflict = Some(ExecError::ExtentMismatch {
                            index: index.clone(),
                            a: prev,
                            b: extent,
                        });
                    }
                    _ => {
                        checked.insert(index.clone(), extent);
                    }
                }
            }
        }
    });
    if let Some(e) = conflict {
        return Err(e);
    }

    let mut outputs = HashMap::new();
    for (access, op) in targets {
        let name = access.tensor.display_name();
        if inputs.contains_key(&name) {
            return Err(ExecError::InputOutputClash { name });
        }
        let dims: Result<Vec<usize>, ExecError> = access
            .indices
            .iter()
            .map(|i| {
                extents.get(i).copied().ok_or_else(|| ExecError::UnknownExtent { index: i.clone() })
            })
            .collect();
        let init = op.identity().unwrap_or(0.0);
        let tensor = DenseTensor::filled(dims?, init);
        match outputs.get(&name) {
            None => {
                outputs.insert(name, tensor);
            }
            Some(existing) => {
                if existing.dims() != tensor.dims() {
                    return Err(ExecError::OutputShapeMismatch {
                        name,
                        expected: existing.dims().to_vec(),
                        got: tensor.dims().to_vec(),
                    });
                }
            }
        }
    }
    Ok(outputs)
}

fn collect(stmt: &Stmt, f: &mut impl FnMut(&Access, Option<AssignOp>)) {
    match stmt {
        Stmt::Block(ss) => {
            for s in ss {
                collect(s, f);
            }
        }
        Stmt::Loop { body, .. } | Stmt::If { body, .. } | Stmt::Workspace { body, .. } => {
            collect(body, f)
        }
        Stmt::Let { value, body, .. } => {
            for a in value.accesses() {
                f(a, None);
            }
            collect(body, f);
        }
        Stmt::Assign { lhs, op, rhs } => {
            if let Lhs::Tensor(a) = lhs {
                f(a, Some(*op));
            }
            for a in rhs.accesses() {
                f(a, None);
            }
        }
    }
}

/// Materializes every derived input variant a program mentions —
/// transposes (`B_T`, from the concordize pass) and diagonal splits
/// (`A_diag` / `A_nondiag`, from the diagonal-splitting pass) — from the
/// base tensors in `base`. Returns only the derived variants; merge them
/// with the base map before calling [`crate::run`].
///
/// # Errors
///
/// Returns [`ExecError::UnknownTensor`] if a variant's base tensor is
/// missing, and propagates tensor-library failures for invalid
/// permutations.
pub fn prepare_variants(
    stmt: &Stmt,
    base: &HashMap<String, Tensor>,
) -> Result<HashMap<String, Tensor>, ExecError> {
    let mut variants: HashMap<String, Tensor> = HashMap::new();
    let mut refs: Vec<TensorRef> = Vec::new();
    collect(stmt, &mut |access, _| {
        if !access.tensor.is_base() && !refs.contains(&access.tensor) {
            refs.push(access.tensor.clone());
        }
    });
    for tref in refs {
        let display = tref.display_name();
        if variants.contains_key(&display) {
            continue;
        }
        // Write-target variants (e.g. a transposed output C_T) are
        // allocated by `alloc_outputs`, not materialized from inputs.
        let Some(base_tensor) = base.get(&tref.name) else {
            continue;
        };
        let tensor = materialize(base_tensor, &tref)
            .map_err(|_| ExecError::UnknownTensor { name: display.clone() })?;
        variants.insert(display, tensor);
    }
    Ok(variants)
}

fn materialize(base: &Tensor, tref: &TensorRef) -> Result<Tensor, TensorError> {
    let permuted = if tref.perm.is_empty() { base.clone() } else { base.permuted(&tref.perm)? };
    match tref.part {
        TensorPart::All => Ok(permuted),
        TensorPart::Diagonal | TensorPart::OffDiagonal => {
            let coo = permuted.to_coo();
            let modes: Vec<usize> = (0..coo.rank()).collect();
            let (off, diag) = coo.split_diagonal(&modes);
            let chosen = if tref.part == TensorPart::Diagonal { diag } else { off };
            Ok(match &permuted {
                Tensor::Sparse(s) => Tensor::Sparse(SparseTensor::from_coo(&chosen, s.formats())?),
                Tensor::Dense(_) => Tensor::Dense(chosen.to_dense()),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;
    use systec_ir::AssignOp;
    use systec_tensor::{CooTensor, SparseTensor, CSR};

    fn inputs() -> HashMap<String, Tensor> {
        let mut coo = CooTensor::new(vec![3, 4]);
        coo.push(&[0, 1], 1.0);
        let mut m = HashMap::new();
        m.insert("A".to_string(), Tensor::Sparse(SparseTensor::from_coo(&coo, &CSR).unwrap()));
        m.insert("x".to_string(), Tensor::Dense(DenseTensor::zeros(vec![4])));
        m
    }

    #[test]
    fn alloc_infers_shape_and_identity() {
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        );
        let outs = alloc_outputs(&prog, &inputs()).unwrap();
        assert_eq!(outs["y"].dims(), &[3]);
        assert_eq!(outs["y"].get(&[0]), 0.0);
    }

    #[test]
    fn alloc_min_identity_is_infinity() {
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign_op(
                access("y", ["i"]),
                AssignOp::Min,
                add([access("A", ["i", "j"]), access("x", ["j"])]),
            ),
        );
        let outs = alloc_outputs(&prog, &inputs()).unwrap();
        assert_eq!(outs["y"].get(&[1]), f64::INFINITY);
    }

    #[test]
    fn alloc_scalar_output() {
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
        );
        let outs = alloc_outputs(&prog, &inputs()).unwrap();
        assert_eq!(outs["s"].dims(), &[] as &[usize]);
    }

    #[test]
    fn alloc_unknown_extent_is_reported() {
        let prog = Stmt::loops([idx("k")], assign(access("z", ["k"]), lit(1.0)));
        assert!(matches!(alloc_outputs(&prog, &inputs()), Err(ExecError::UnknownExtent { .. })));
    }

    #[test]
    fn prepare_materializes_transpose() {
        let a_t = Access {
            tensor: systec_ir::TensorRef::transposed("A", vec![1, 0]),
            indices: vec![idx("j"), idx("i")],
        };
        let prog = Stmt::loops(
            [idx("j"), idx("i")],
            assign(
                access("y", ["i"]),
                mul([systec_ir::Expr::Access(a_t), access("x", ["j"]).into()]),
            ),
        );
        let variants = prepare_variants(&prog, &inputs()).unwrap();
        let at = variants.get("A_T").expect("A_T materialized");
        assert_eq!(at.dims(), &[4, 3]);
        assert_eq!(at.get(&[1, 0]), 1.0);
    }

    #[test]
    fn prepare_materializes_diag_split() {
        let mut coo = CooTensor::new(vec![3, 3]);
        coo.push(&[0, 0], 1.0);
        coo.push(&[0, 1], 2.0);
        let mut base = HashMap::new();
        base.insert("A".to_string(), Tensor::Sparse(SparseTensor::from_coo(&coo, &CSR).unwrap()));
        base.insert("x".to_string(), Tensor::Dense(DenseTensor::zeros(vec![3])));

        let mut diag_ref = systec_ir::TensorRef::base("A");
        diag_ref.part = TensorPart::Diagonal;
        let a_diag = Access { tensor: diag_ref, indices: vec![idx("i"), idx("j")] };
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign(
                access("y", ["i"]),
                mul([systec_ir::Expr::Access(a_diag), access("x", ["j"]).into()]),
            ),
        );
        let variants = prepare_variants(&prog, &base).unwrap();
        let d = variants.get("A_diag").expect("A_diag materialized");
        assert_eq!(d.get(&[0, 0]), 1.0);
        assert_eq!(d.get(&[0, 1]), 0.0);
    }
}
