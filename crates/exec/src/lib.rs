//! # systec-exec
//!
//! The executing backend of the SySTeC reproduction: it gives the
//! dense-looking IR of `systec-ir` the Finch-like sparse semantics the
//! paper relies on (§2.2), standing in for Finch's lowering to Julia and
//! LLVM.
//!
//! The pipeline is:
//!
//! 1. **Hoisting** ([`hoist_conditions`]) — loop-invariant index
//!    comparisons float out of inner loops so they can become bounds.
//! 2. **Lowering** ([`lower`]) — names become slots; comparisons between
//!    a loop index and outer indices become loop *bounds* (the paper's
//!    `i < 7` example compiling to an early-exiting sparse walk);
//!    concordant sparse accesses become position-tracked paths; one
//!    sparse access per loop is chosen as the *driver* when every
//!    assignment in the loop annihilates on its fill value.
//! 3. **Execution** ([`run`]) — an interpreter walks the lowered tree,
//!    iterating sparse levels through their compressed coordinates
//!    (binary-searched to the lifted bounds) and counting element reads,
//!    semiring flops and output writes as it goes.
//!
//! Both the naive and the SySTeC-optimized kernels execute on this same
//! backend, so measured speedups isolate exactly what the paper measures:
//! saved reads, saved iterations and saved flops.
//!
//! ## Example
//!
//! ```
//! use std::collections::HashMap;
//! use systec_ir::build::*;
//! use systec_ir::Stmt;
//! use systec_tensor::{CooTensor, SparseTensor, Tensor, CSR};
//! use systec_exec::{alloc_outputs, run};
//!
//! // y[i] += A[i, j] * x[j]  over CSR A (concordant loop order i, j).
//! let prog = Stmt::loops(
//!     [idx("i"), idx("j")],
//!     assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
//! );
//! let mut coo = CooTensor::new(vec![2, 2]);
//! coo.push(&[0, 1], 3.0);
//! let mut inputs = HashMap::new();
//! inputs.insert("A".to_string(), Tensor::Sparse(SparseTensor::from_coo(&coo, &CSR).unwrap()));
//! inputs.insert("x".to_string(), Tensor::Dense(systec_tensor::DenseTensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap()));
//! let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
//! let counters = run(&prog, &inputs, &mut outputs).unwrap();
//! assert_eq!(outputs["y"].get(&[0]), 6.0);
//! assert_eq!(counters.reads_of("A"), 1); // only the stored entry was touched
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod error;
mod hoist;
mod lower;
mod prepare;
pub mod reference;
mod run;

pub use counters::{CounterBank, Counters};
pub use error::ExecError;
pub use hoist::hoist_conditions;
pub use lower::{lower, LoweredProgram};
pub use prepare::{alloc_outputs, prepare_variants};
pub use run::{run, run_lowered};

/// The lowered-program data model, exposed for alternative backends.
///
/// The tree-walking interpreter ([`run_lowered`]) and the bytecode
/// compiler in `systec-codegen` both consume these types; everything a
/// backend needs to execute a [`LoweredProgram`] — slots, loop plans,
/// drivers, expressions — is public here.
pub mod lowered {
    pub use crate::lower::{
        AccessSlot, Advance, LBound, LCond, LExpr, LStmt, LTarget, SlotKind, TensorSlot,
    };
}
