//! Error type for lowering and execution.

use std::error::Error;
use std::fmt;

use systec_ir::Index;

/// An error raised while lowering or executing a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// An accessed tensor was not supplied in the input bindings.
    UnknownTensor {
        /// The missing tensor's display name.
        name: String,
    },
    /// An access arity did not match the bound tensor's rank.
    AccessRankMismatch {
        /// The tensor's display name.
        name: String,
        /// The tensor's rank.
        rank: usize,
        /// The access's subscript count.
        subscripts: usize,
    },
    /// Two uses of the same index implied different extents.
    ExtentMismatch {
        /// The index in question.
        index: Index,
        /// First implied extent.
        a: usize,
        /// Second implied extent.
        b: usize,
    },
    /// A loop index's extent could not be inferred from any access.
    UnknownExtent {
        /// The index in question.
        index: Index,
    },
    /// An index was used in an access or condition without an enclosing
    /// loop binding it.
    UnboundIndex {
        /// The index in question.
        index: Index,
    },
    /// A scalar variable was referenced outside any `let`/workspace scope
    /// binding it.
    UnboundScalar {
        /// The scalar's name.
        name: String,
    },
    /// A supplied output tensor's shape did not match the program.
    OutputShapeMismatch {
        /// The output's display name.
        name: String,
        /// Expected shape.
        expected: Vec<usize>,
        /// Supplied shape.
        got: Vec<usize>,
    },
    /// A bound tensor's shape did not match the shape a compiled plan
    /// was built against (inputs and outputs alike).
    BindingShapeMismatch {
        /// The tensor's display name.
        name: String,
        /// The shape the plan was compiled for.
        expected: Vec<usize>,
        /// The supplied shape.
        got: Vec<usize>,
    },
    /// A tensor appears both as an input and as a write target.
    InputOutputClash {
        /// The display name used both ways.
        name: String,
    },
    /// The kernel specification itself (einsum + symmetry declarations)
    /// was rejected by the compiler — raised by preparation paths that
    /// accept specs from untrusted callers (the serving layer) instead
    /// of statically known kernel definitions.
    InvalidKernel {
        /// The compiler's rejection message.
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTensor { name } => write!(f, "tensor `{name}` is not bound"),
            ExecError::AccessRankMismatch { name, rank, subscripts } => write!(
                f,
                "access to `{name}` has {subscripts} subscripts but the tensor has rank {rank}"
            ),
            ExecError::ExtentMismatch { index, a, b } => {
                write!(f, "index `{index}` is used with conflicting extents {a} and {b}")
            }
            ExecError::UnknownExtent { index } => {
                write!(f, "extent of loop index `{index}` cannot be inferred from any access")
            }
            ExecError::UnboundIndex { index } => {
                write!(f, "index `{index}` is used without an enclosing loop")
            }
            ExecError::UnboundScalar { name } => {
                write!(f, "scalar `{name}` is referenced outside its binding scope")
            }
            ExecError::OutputShapeMismatch { name, expected, got } => {
                write!(f, "output `{name}` has shape {got:?}, expected {expected:?}")
            }
            ExecError::BindingShapeMismatch { name, expected, got } => {
                write!(
                    f,
                    "tensor `{name}` has shape {got:?}, but the plan was compiled for {expected:?}"
                )
            }
            ExecError::InputOutputClash { name } => {
                write!(f, "tensor `{name}` is bound as an input but written as an output")
            }
            ExecError::InvalidKernel { message } => {
                write!(f, "invalid kernel specification: {message}")
            }
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ExecError::UnknownTensor { name: "A_T".into() };
        assert_eq!(e.to_string(), "tensor `A_T` is not bound");
        let e = ExecError::ExtentMismatch { index: Index::new("i"), a: 3, b: 4 };
        assert!(e.to_string().contains("conflicting extents"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ExecError>();
    }
}
