//! The interpreter: executes lowered programs over concrete tensors.

use std::collections::HashMap;

use systec_ir::{AssignOp, Stmt};
use systec_tensor::{DenseTensor, SparseTensor, Tensor};

use crate::lower::{LBound, LCond, LExpr, LStmt, LTarget, LoweredProgram, SlotKind};
use crate::{hoist_conditions, lower, Counters, ExecError};

/// Hoists, lowers and executes a program in one call.
///
/// `inputs` maps *display names* (including derived variants such as
/// `A_T`, `A_diag` — see [`crate::prepare_variants`]) to tensors;
/// `outputs` maps output display names to pre-initialized dense tensors,
/// which are updated in place.
///
/// # Errors
///
/// Returns an [`ExecError`] if the program does not validate against the
/// bindings (unknown tensors, rank/extent mismatches, unbound indices).
pub fn run(
    stmt: &Stmt,
    inputs: &HashMap<String, Tensor>,
    outputs: &mut HashMap<String, DenseTensor>,
) -> Result<Counters, ExecError> {
    let hoisted = hoist_conditions(stmt.clone());
    let program = lower(&hoisted, inputs, outputs)?;
    run_lowered(&program, inputs, outputs)
}

/// Executes an already-lowered program (use this to amortize lowering
/// over repeated benchmark runs).
///
/// # Errors
///
/// Returns an [`ExecError`] if a tensor bound at lowering time is missing
/// or changed shape.
pub fn run_lowered(
    program: &LoweredProgram,
    inputs: &HashMap<String, Tensor>,
    outputs: &mut HashMap<String, DenseTensor>,
) -> Result<Counters, ExecError> {
    // Resolve tensor slots. Outputs are temporarily moved out of the map
    // so the machine can read and write them freely.
    let mut dense_inputs: Vec<Option<&DenseTensor>> = vec![None; program.tensors.len()];
    let mut sparse_inputs: Vec<Option<&SparseTensor>> = vec![None; program.tensors.len()];
    for (slot, info) in program.tensors.iter().enumerate() {
        match info.kind {
            SlotKind::DenseInput => match inputs.get(&info.name) {
                Some(Tensor::Dense(t)) => dense_inputs[slot] = Some(t),
                _ => return Err(ExecError::UnknownTensor { name: info.name.clone() }),
            },
            SlotKind::SparseInput => match inputs.get(&info.name) {
                Some(Tensor::Sparse(t)) => sparse_inputs[slot] = Some(t),
                _ => return Err(ExecError::UnknownTensor { name: info.name.clone() }),
            },
            SlotKind::Output => {
                if !outputs.contains_key(&info.name) {
                    return Err(ExecError::UnknownTensor { name: info.name.clone() });
                }
            }
        }
    }
    let mut taken: Vec<DenseTensor> = Vec::new();
    let mut output_slot_to_taken: Vec<usize> = vec![usize::MAX; program.tensors.len()];
    for (slot, info) in program.tensors.iter().enumerate() {
        if info.kind == SlotKind::Output {
            let t = outputs.remove(&info.name).expect("presence checked above");
            output_slot_to_taken[slot] = taken.len();
            taken.push(t);
        }
    }

    let mut machine = Machine {
        program,
        dense_inputs,
        sparse_inputs,
        outputs: taken,
        output_slot_to_taken: &output_slot_to_taken,
        idx: vec![0; program.indices.len()],
        scalars: vec![0.0; program.n_scalars],
        paths: program
            .accesses
            .iter()
            .map(|a| {
                let mut p = vec![None; a.rank + 1];
                p[0] = Some(0);
                p
            })
            .collect(),
        missing: false,
        counters: CounterBank::new(program.tensors.len()),
    };
    machine.exec(&program.root);

    // Put the outputs back (in taken order, moving them).
    let Machine { outputs: taken, counters, .. } = machine;
    let mut names: Vec<&str> = vec![""; taken.len()];
    for (slot, info) in program.tensors.iter().enumerate() {
        if info.kind == SlotKind::Output {
            names[output_slot_to_taken[slot]] = &info.name;
        }
    }
    for (name, tensor) in names.into_iter().zip(taken) {
        outputs.insert(name.to_string(), tensor);
    }
    Ok(counters.into_counters(program))
}

/// Flat per-tensor-slot counters (cheap to bump in the hot loop).
struct CounterBank {
    reads: Vec<u64>,
    flops: u64,
    writes: u64,
    iterations: u64,
}

impl CounterBank {
    fn new(n_tensors: usize) -> Self {
        CounterBank { reads: vec![0; n_tensors], flops: 0, writes: 0, iterations: 0 }
    }

    fn into_counters(self, program: &LoweredProgram) -> Counters {
        let mut c = Counters::new();
        for (slot, count) in self.reads.iter().enumerate() {
            if *count > 0 {
                c.reads.insert(program.tensors[slot].name.clone(), *count);
            }
        }
        c.flops = self.flops;
        c.writes = self.writes;
        c.iterations = self.iterations;
        c
    }
}

struct Machine<'p, 'a> {
    program: &'p LoweredProgram,
    dense_inputs: Vec<Option<&'a DenseTensor>>,
    sparse_inputs: Vec<Option<&'a SparseTensor>>,
    outputs: Vec<DenseTensor>,
    output_slot_to_taken: &'p [usize],
    idx: Vec<usize>,
    scalars: Vec<f64>,
    /// Per tracked access: positions per level (`paths[a][m+1]` is the
    /// position after descending level `m`); `None` = unstored.
    paths: Vec<Vec<Option<usize>>>,
    /// Set when an annihilator read missed; the enclosing assignment
    /// skips.
    missing: bool,
    counters: CounterBank,
}

impl Machine<'_, '_> {
    fn exec(&mut self, stmt: &LStmt) {
        match stmt {
            LStmt::Seq(ss) => {
                for s in ss {
                    self.exec(s);
                }
            }
            LStmt::Loop { idx, extent, lo, hi, drivers, probes, body } => {
                self.exec_loop(*idx, *extent, lo, hi, drivers, probes, body);
            }
            LStmt::If { cond, body } => {
                if self.eval_cond(cond) {
                    self.exec(body);
                }
            }
            LStmt::Let { slot, value, skip_if_missing, body } => {
                if let Some(access) = skip_if_missing {
                    if self.paths[*access].last().copied().flatten().is_none() {
                        return;
                    }
                }
                self.missing = false;
                let v = self.eval(value);
                self.scalars[*slot] = v;
                self.exec(body);
            }
            LStmt::Workspace { slot, init, body } => {
                self.scalars[*slot] = *init;
                self.exec(body);
            }
            LStmt::Assign { target, op, rhs, can_miss } => {
                let v = if *can_miss {
                    self.missing = false;
                    let v = self.eval(rhs);
                    if self.missing {
                        return;
                    }
                    v
                } else {
                    self.eval(rhs)
                };
                match target {
                    LTarget::Output { tensor, modes } => {
                        let out = &mut self.outputs[self.output_slot_to_taken[*tensor]];
                        let mut off = 0usize;
                        for (k, &m) in modes.iter().enumerate() {
                            off += self.idx[m] * out.strides()[k];
                        }
                        let cell = &mut out.as_mut_slice()[off];
                        *cell = op.apply(*cell, v);
                        self.counters.writes += 1;
                        if *op != AssignOp::Overwrite {
                            self.counters.flops += 1;
                        }
                    }
                    LTarget::Scalar(slot) => {
                        let cell = &mut self.scalars[*slot];
                        *cell = op.apply(*cell, v);
                        if *op != AssignOp::Overwrite {
                            self.counters.flops += 1;
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_loop(
        &mut self,
        idx: usize,
        extent: usize,
        lo: &[LBound],
        hi: &[LBound],
        drivers: &[crate::lower::Advance],
        probes: &[crate::lower::Advance],
        body: &LStmt,
    ) {
        if extent == 0 {
            return;
        }
        let mut lo_v: i64 = 0;
        for b in lo {
            lo_v = lo_v.max(self.idx[b.idx] as i64 + b.delta);
        }
        let mut hi_v: i64 = extent as i64 - 1;
        for b in hi {
            hi_v = hi_v.min(self.idx[b.idx] as i64 + b.delta);
        }
        if lo_v > hi_v {
            return;
        }
        let (lo_v, hi_v) = (lo_v as usize, hi_v as usize);

        if let Some(driver) = drivers.first() {
            let tensor = self.program.accesses[driver.access].tensor;
            let sparse = self.sparse_inputs[tensor].expect("driver tensors are sparse inputs");
            let Some(parent) = self.paths[driver.access][driver.level] else {
                // The driver's own prefix is unstored: every coordinate
                // reads fill and every assignment annihilates. Skip.
                return;
            };
            // Walking the compressed level is where the sparse kernel's
            // memory traffic happens; count one structure read per step.
            let iter = sparse.level_iter(driver.level, parent, lo_v, hi_v);
            for (coord, pos) in iter {
                self.idx[idx] = coord;
                self.paths[driver.access][driver.level + 1] = Some(pos);
                for extra in &drivers[1..] {
                    self.advance_probe(extra, coord);
                }
                for probe in probes {
                    self.advance_probe(probe, coord);
                }
                self.counters.iterations += 1;
                self.exec(body);
            }
        } else {
            for v in lo_v..=hi_v {
                self.idx[idx] = v;
                for probe in probes {
                    self.advance_probe(probe, v);
                }
                self.counters.iterations += 1;
                self.exec(body);
            }
        }
    }

    fn advance_probe(&mut self, probe: &crate::lower::Advance, coord: usize) {
        let tensor = self.program.accesses[probe.access].tensor;
        let sparse = self.sparse_inputs[tensor].expect("probed tensors are sparse inputs");
        let next = match self.paths[probe.access][probe.level] {
            Some(parent) => sparse.level_find(probe.level, parent, coord),
            None => None,
        };
        self.paths[probe.access][probe.level + 1] = next;
    }

    #[inline]
    fn offset(&self, strides: &[usize], modes: &[usize]) -> usize {
        let mut off = 0usize;
        for (k, &m) in modes.iter().enumerate() {
            off += self.idx[m] * strides[k];
        }
        off
    }

    fn eval_cond(&self, cond: &LCond) -> bool {
        match cond {
            LCond::True => true,
            LCond::Cmp(op, a, b) => op.eval(self.idx[*a], self.idx[*b]),
            LCond::And(cs) => cs.iter().all(|c| self.eval_cond(c)),
            LCond::Or(cs) => cs.iter().any(|c| self.eval_cond(c)),
        }
    }

    fn eval(&mut self, expr: &LExpr) -> f64 {
        match expr {
            LExpr::Lit(v) => *v,
            LExpr::Scalar(slot) => self.scalars[*slot],
            LExpr::ReadDense { tensor, modes } => {
                let t = self.dense_inputs[*tensor].expect("dense input bound");
                let off = self.offset(t.strides(), modes);
                self.counters.reads[*tensor] += 1;
                t.as_slice()[off]
            }
            LExpr::ReadOutput { tensor, modes } => {
                let t = &self.outputs[self.output_slot_to_taken[*tensor]];
                let off = self.offset(t.strides(), modes);
                self.counters.reads[*tensor] += 1;
                t.as_slice()[off]
            }
            LExpr::ReadSparsePath { access, tensor, rank, annihilator } => {
                match self.paths[*access][*rank] {
                    Some(pos) => {
                        let t = self.sparse_inputs[*tensor].expect("sparse input bound");
                        self.counters.reads[*tensor] += 1;
                        t.value(pos)
                    }
                    None => {
                        if *annihilator {
                            self.missing = true;
                        }
                        0.0
                    }
                }
            }
            LExpr::ReadSparseRandom { tensor, modes, annihilator } => {
                let t = self.sparse_inputs[*tensor].expect("sparse input bound");
                let mut pos = 0usize;
                let mut found = true;
                for (level, &m) in modes.iter().enumerate() {
                    match t.level_find(level, pos, self.idx[m]) {
                        Some(next) => pos = next,
                        None => {
                            found = false;
                            break;
                        }
                    }
                }
                if found {
                    self.counters.reads[*tensor] += 1;
                    t.value(pos)
                } else {
                    if *annihilator {
                        self.missing = true;
                    }
                    0.0
                }
            }
            LExpr::Call { op, args } => {
                // Binary fast path (the overwhelmingly common case).
                if let [a, b] = args.as_slice() {
                    let va = self.eval(a);
                    let vb = self.eval(b);
                    self.counters.flops += 1;
                    return op.apply(va, vb);
                }
                let mut it = args.iter();
                let first = it.next().expect("calls have at least one argument");
                let mut acc = self.eval(first);
                for a in it {
                    let v = self.eval(a);
                    acc = op.apply(acc, v);
                    self.counters.flops += 1;
                }
                acc
            }
            LExpr::CmpVal { op, a, b } => {
                if op.eval(self.idx[*a], self.idx[*b]) {
                    1.0
                } else {
                    0.0
                }
            }
            LExpr::Lookup { table, index } => {
                let i = self.eval(index) as usize;
                table.get(i).copied().unwrap_or(0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_outputs;
    use systec_ir::build::*;
    use systec_ir::{AssignOp, Stmt};
    use systec_tensor::{CooTensor, SparseTensor, CSR};

    fn csr(entries: &[(usize, usize, f64)], n: usize) -> Tensor {
        let mut coo = CooTensor::new(vec![n, n]);
        for &(i, j, v) in entries {
            coo.push(&[i, j], v);
        }
        Tensor::Sparse(SparseTensor::from_coo(&coo, &CSR).unwrap())
    }

    fn dense_vec(v: &[f64]) -> Tensor {
        Tensor::Dense(DenseTensor::from_vec(vec![v.len()], v.to_vec()).unwrap())
    }

    #[test]
    fn spmv_concordant_driver() {
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 1, 2.0), (1, 0, 3.0), (2, 2, 4.0)], 3));
        inputs.insert("x".to_string(), dense_vec(&[1.0, 10.0, 100.0]));
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        let c = run(&prog, &inputs, &mut outputs).unwrap();
        let y = &outputs["y"];
        assert_eq!(y.get(&[0]), 20.0);
        assert_eq!(y.get(&[1]), 3.0);
        assert_eq!(y.get(&[2]), 400.0);
        // Only the 3 stored entries were read (driven iteration).
        assert_eq!(c.reads_of("A"), 3);
        assert_eq!(c.reads_of("x"), 3);
        assert_eq!(c.writes, 3);
    }

    #[test]
    fn triangular_bound_restricts_sparse_walk() {
        // s[] += A[i, j] for j <= i  over lower-triangle-heavy A.
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::guarded(
                le("j", "i"),
                assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
            ),
        );
        let mut inputs = HashMap::new();
        inputs
            .insert("A".to_string(), csr(&[(0, 0, 1.0), (0, 2, 5.0), (1, 0, 2.0), (2, 2, 3.0)], 3));
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        let c = run(&prog, &inputs, &mut outputs).unwrap();
        assert_eq!(outputs["s"].get(&[]), 6.0);
        // The (0,2) entry is outside the bound: binary search skips it
        // without reading its value.
        assert_eq!(c.reads_of("A"), 3);
    }

    #[test]
    fn residual_equality_guard() {
        // trace: s[] += A[i, j] if i == j  (equality becomes point bounds).
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::guarded(
                eq("i", "j"),
                assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
            ),
        );
        let mut inputs = HashMap::new();
        inputs
            .insert("A".to_string(), csr(&[(0, 0, 1.0), (0, 1, 9.0), (1, 1, 2.0), (2, 0, 7.0)], 3));
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        let c = run(&prog, &inputs, &mut outputs).unwrap();
        assert_eq!(outputs["s"].get(&[]), 3.0);
        assert_eq!(c.reads_of("A"), 2, "point bounds touch only diagonal entries");
    }

    #[test]
    fn min_plus_semiring_with_sparse_fill() {
        // Bellman-Ford step: y[i] min= A[i, j] + d[j]; unstored entries
        // must behave as +inf (skipped), not 0.
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign_op(
                access("y", ["i"]),
                AssignOp::Min,
                add([access("A", ["i", "j"]), access("d", ["j"])]),
            ),
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 1, 1.0), (1, 2, 2.0)], 3));
        inputs.insert("d".to_string(), dense_vec(&[0.0, 5.0, 50.0]));
        let mut outputs = HashMap::new();
        outputs.insert("y".to_string(), DenseTensor::filled(vec![3], f64::INFINITY));
        run(&prog, &inputs, &mut outputs).unwrap();
        let y = &outputs["y"];
        assert_eq!(y.get(&[0]), 6.0); // 1 + d[1]
        assert_eq!(y.get(&[1]), 52.0); // 2 + d[2]
        assert_eq!(y.get(&[2]), f64::INFINITY); // no out-edges stored
    }

    #[test]
    fn let_binding_reuses_read() {
        // let a = A[i, j]: y[i] += a * x[j]; y[j] += a * x[i]
        let body = Stmt::Let {
            name: "a".into(),
            value: access("A", ["i", "j"]).into(),
            body: Box::new(Stmt::block([
                assign(access("y", ["i"]), mul([scalar("a"), access("x", ["j"]).into()])),
                assign(access("y", ["j"]), mul([scalar("a"), access("x", ["i"]).into()])),
            ])),
        };
        let prog = Stmt::loops([idx("i"), idx("j")], body);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 1, 2.0)], 2));
        inputs.insert("x".to_string(), dense_vec(&[1.0, 10.0]));
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        let c = run(&prog, &inputs, &mut outputs).unwrap();
        assert_eq!(outputs["y"].get(&[0]), 20.0);
        assert_eq!(outputs["y"].get(&[1]), 2.0);
        assert_eq!(c.reads_of("A"), 1, "the let makes one read serve two assignments");
    }

    #[test]
    fn workspace_accumulates_and_writes_back() {
        // for j: workspace t = 0: for i: t += A[i, j] ; y[j] += t
        // (discordant CSR access -> random reads, still correct).
        let prog = Stmt::loops(
            [idx("j")],
            Stmt::Workspace {
                name: "t".into(),
                init: 0.0,
                body: Box::new(Stmt::block([
                    Stmt::loops(
                        [idx("i")],
                        Stmt::Assign {
                            lhs: systec_ir::Lhs::Scalar("t".into()),
                            op: AssignOp::Add,
                            rhs: access("A", ["i", "j"]).into(),
                        },
                    ),
                    assign(access("y", ["j"]), scalar("t")),
                ])),
            },
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 0, 1.0), (1, 0, 2.0), (1, 1, 4.0)], 2));
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        run(&prog, &inputs, &mut outputs).unwrap();
        assert_eq!(outputs["y"].get(&[0]), 3.0);
        assert_eq!(outputs["y"].get(&[1]), 4.0);
    }

    #[test]
    fn replication_loop_overwrites_mirror() {
        // for j, i: if i > j: y[i, j] = y[j, i]
        let prog = Stmt::loops(
            [idx("j"), idx("i")],
            Stmt::guarded(
                gt("i", "j"),
                store(access("y", ["i", "j"]), access("y", ["j", "i"]).into()),
            ),
        );
        let inputs = HashMap::new();
        let mut y = DenseTensor::zeros(vec![2, 2]);
        y.set(&[0, 1], 7.0);
        let mut outputs = HashMap::new();
        outputs.insert("y".to_string(), y);
        run(&prog, &inputs, &mut outputs).unwrap();
        assert_eq!(outputs["y"].get(&[1, 0]), 7.0);
    }

    #[test]
    fn lookup_table_selects_factor() {
        // s[] += table[(i == j)] * A[i, j]  with table [3, 11].
        let rhs = mul([
            systec_ir::Expr::Lookup {
                table: vec![3.0, 11.0],
                index: Box::new(systec_ir::Expr::CmpVal {
                    op: systec_ir::CmpOp::Eq,
                    lhs: idx("i"),
                    rhs: idx("j"),
                }),
            },
            access("A", ["i", "j"]).into(),
        ]);
        let prog = Stmt::loops([idx("i"), idx("j")], assign(access("s", [] as [&str; 0]), rhs));
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 0, 1.0), (0, 1, 1.0)], 2));
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        run(&prog, &inputs, &mut outputs).unwrap();
        assert_eq!(outputs["s"].get(&[]), 11.0 + 3.0);
    }

    #[test]
    fn empty_loop_range_executes_nothing() {
        let prog = Stmt::loops(
            [idx("j"), idx("i")],
            Stmt::guarded(
                and([gt("i", "j"), lt("i", "j")]),
                assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
            ),
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 0, 1.0)], 2));
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        let c = run(&prog, &inputs, &mut outputs).unwrap();
        assert_eq!(outputs["s"].get(&[]), 0.0);
        assert_eq!(c.writes, 0);
    }
}
