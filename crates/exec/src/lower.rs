//! Lowering: names to slots, comparisons to loop bounds, concordant
//! sparse accesses to position-tracked paths, and driver selection.
//!
//! Lowering is where the IR's dense-looking loops acquire their sparse
//! execution strategy, mirroring what the Finch compiler does when it
//! turns `for i=_; if i < 7; s[] += x[i]` into an early-exiting walk of
//! `x`'s coordinate array (paper §2.2):
//!
//! * Conjuncts `i ⋈ j` between the loop index `i` and an already-bound
//!   outer index `j` become **bounds** `[lo, hi]` on the loop.
//! * A sparse access whose subscripts bind outermost-first (a
//!   *concordant* access, §4.2.3) is **path-tracked**: each loop advances
//!   a per-level position, so value reads are O(1) pointer chases.
//! * At each loop, one advanced sparse access may become the **driver**:
//!   iteration walks its compressed coordinates instead of the full
//!   dimension. Driving is sound only when skipping unstored coordinates
//!   is unobservable, i.e. every assignment in the loop *annihilates* on
//!   the access's fill (a `+=` of a product containing the access, or a
//!   `min=`/`max=` of a sum containing it — the tropical fill being the
//!   reduction identity).

use std::collections::HashMap;

use systec_ir::{Access, AssignOp, BinOp, CmpOp, Cond, Expr, Index, Lhs, Stmt, TensorRef};
use systec_tensor::{DenseTensor, LevelFormat, Tensor};

use crate::ExecError;

/// A fully lowered program, ready for [`crate::run_lowered`] or for an
/// alternative backend (see `systec-codegen`) that consumes the data
/// model re-exported from [`crate::lowered`].
#[derive(Debug)]
pub struct LoweredProgram {
    /// Every tensor the program touches, by slot index.
    pub tensors: Vec<TensorSlot>,
    /// Every path-tracked (concordant) sparse access, by slot index.
    pub accesses: Vec<AccessSlot>,
    /// Every loop index, by slot index.
    pub indices: Vec<Index>,
    /// The inferred extent of each index slot.
    pub extents: Vec<usize>,
    /// Number of scalar (`let`/workspace) slots.
    pub n_scalars: usize,
    /// The lowered statement tree.
    pub root: LStmt,
}

/// One tensor the program touches.
#[derive(Debug)]
pub struct TensorSlot {
    /// The tensor's display name (binding key in the input/output maps).
    pub name: String,
    /// How the slot is bound and accessed.
    pub kind: SlotKind,
}

/// The binding class of a [`TensorSlot`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotKind {
    /// A dense input tensor.
    DenseInput,
    /// A compressed input tensor.
    SparseInput,
    /// A dense output tensor (read and written).
    Output,
}

/// A path-tracked (concordant) sparse access.
#[derive(Debug)]
pub struct AccessSlot {
    /// The tensor slot this access reads.
    pub tensor: usize,
    /// The access's subscript count.
    pub rank: usize,
}

/// A lowered statement.
#[derive(Clone, Debug)]
pub enum LStmt {
    /// Statements executed in order.
    Seq(Vec<LStmt>),
    /// A loop over one index, possibly driven by a sparse level.
    Loop {
        /// The index slot this loop binds.
        idx: usize,
        /// The index's full extent (dense iteration space).
        extent: usize,
        /// Dynamic lower bounds; the loop starts at their maximum.
        lo: Vec<LBound>,
        /// Dynamic upper bounds; the loop stops at their minimum.
        hi: Vec<LBound>,
        /// Driver candidates, in priority order. Empty = dense loop.
        drivers: Vec<Advance>,
        /// Non-driving accesses advanced by this loop (position updates).
        probes: Vec<Advance>,
        /// The loop body.
        body: Box<LStmt>,
    },
    /// A residual conditional (not lifted into bounds).
    If {
        /// The guard over bound index slots.
        cond: LCond,
        /// The guarded body.
        body: Box<LStmt>,
    },
    /// A scalar binding.
    Let {
        /// The scalar slot written.
        slot: usize,
        /// The bound value.
        value: LExpr,
        /// Sparse access whose absence makes the whole body a no-op
        /// (common-subexpression `let`s over a driver value).
        skip_if_missing: Option<usize>,
        /// The statements the binding scopes over.
        body: Box<LStmt>,
    },
    /// A scalar accumulator initialized per iteration.
    Workspace {
        /// The scalar slot initialized.
        slot: usize,
        /// The reduction identity it starts from.
        init: f64,
        /// The statements the workspace scopes over.
        body: Box<LStmt>,
    },
    /// A reducing (or overwriting) assignment.
    Assign {
        /// The write target.
        target: LTarget,
        /// The reduction operator.
        op: AssignOp,
        /// The value expression.
        rhs: LExpr,
        /// Whether the right-hand side contains a sparse annihilator read
        /// that can miss at runtime (enables the skip bookkeeping).
        can_miss: bool,
    },
}

/// An access advanced one level by a loop.
#[derive(Clone, Copy, Debug)]
pub struct Advance {
    /// The access slot advanced.
    pub access: usize,
    /// The level (mode) the loop binds for this access.
    pub level: usize,
}

/// A runtime loop bound: `value(idx) + delta`.
#[derive(Clone, Copy, Debug)]
pub struct LBound {
    /// The (outer) index slot the bound reads.
    pub idx: usize,
    /// Signed offset applied to the index value.
    pub delta: i64,
}

/// A lowered condition over bound index slots.
#[derive(Clone, Debug)]
pub enum LCond {
    /// Always true.
    True,
    /// A comparison between two index slots.
    Cmp(CmpOp, usize, usize),
    /// All conjuncts hold.
    And(Vec<LCond>),
    /// Any disjunct holds.
    Or(Vec<LCond>),
}

/// A lowered value expression.
#[derive(Clone, Debug)]
pub enum LExpr {
    /// A literal constant.
    Lit(f64),
    /// A scalar slot read.
    Scalar(usize),
    /// A dense-input element read.
    ReadDense {
        /// The tensor slot read.
        tensor: usize,
        /// Index slots, one per mode.
        modes: Vec<usize>,
    },
    /// An output element read.
    ReadOutput {
        /// The tensor slot read.
        tensor: usize,
        /// Index slots, one per mode.
        modes: Vec<usize>,
    },
    /// Concordant read through the tracked path (O(1)).
    ReadSparsePath {
        /// The access slot whose path is read.
        access: usize,
        /// The tensor slot read.
        tensor: usize,
        /// The access's rank (`paths[access][rank]` is the leaf position).
        rank: usize,
        /// Whether a miss annihilates the enclosing assignment.
        annihilator: bool,
    },
    /// Non-concordant read: per-level binary search from the root.
    ReadSparseRandom {
        /// The tensor slot read.
        tensor: usize,
        /// Index slots, one per mode.
        modes: Vec<usize>,
        /// Whether a miss annihilates the enclosing assignment.
        annihilator: bool,
    },
    /// An n-ary application of a binary operator (left fold).
    Call {
        /// The operator.
        op: BinOp,
        /// The operands (at least one).
        args: Vec<LExpr>,
    },
    /// An index comparison as a 0/1 value.
    CmpVal {
        /// The comparison operator.
        op: CmpOp,
        /// Left index slot.
        a: usize,
        /// Right index slot.
        b: usize,
    },
    /// A table lookup indexed by a computed value.
    Lookup {
        /// The table values.
        table: Vec<f64>,
        /// The index expression (truncated to `usize`).
        index: Box<LExpr>,
    },
}

/// A lowered assignment target.
#[derive(Clone, Debug)]
pub enum LTarget {
    /// An output tensor element.
    Output {
        /// The output tensor slot.
        tensor: usize,
        /// Index slots, one per mode.
        modes: Vec<usize>,
    },
    /// A scalar slot.
    Scalar(usize),
}

type AccessKey = (String, Vec<Index>);

struct Ctx<'a> {
    inputs: &'a HashMap<String, Tensor>,
    outputs: &'a HashMap<String, DenseTensor>,
    tensors: Vec<TensorSlot>,
    tensor_ids: HashMap<String, usize>,
    accesses: Vec<AccessSlot>,
    access_ids: HashMap<AccessKey, usize>,
    indices: Vec<Index>,
    index_ids: HashMap<Index, usize>,
    extents: Vec<usize>,
    /// Loop depth at which each index slot is currently bound.
    bound_at: HashMap<usize, usize>,
    depth: usize,
    /// Next level each tracked access expects to advance (scoped).
    advance_state: HashMap<AccessKey, usize>,
    /// Scalar scope stack: name → slot.
    scalar_scope: Vec<(String, usize)>,
    n_scalars: usize,
}

/// Lowers a (hoisted) program against concrete input/output bindings.
///
/// # Errors
///
/// Returns an [`ExecError`] for unbound tensors, rank or extent
/// mismatches, unbound indices/scalars, or output shape mismatches.
pub fn lower(
    stmt: &Stmt,
    inputs: &HashMap<String, Tensor>,
    outputs: &HashMap<String, DenseTensor>,
) -> Result<LoweredProgram, ExecError> {
    let mut ctx = Ctx {
        inputs,
        outputs,
        tensors: Vec::new(),
        tensor_ids: HashMap::new(),
        accesses: Vec::new(),
        access_ids: HashMap::new(),
        indices: Vec::new(),
        index_ids: HashMap::new(),
        extents: Vec::new(),
        bound_at: HashMap::new(),
        depth: 0,
        advance_state: HashMap::new(),
        scalar_scope: Vec::new(),
        n_scalars: 0,
    };
    ctx.infer_extents(stmt)?;
    let root = ctx.lower_stmt(stmt)?;
    Ok(LoweredProgram {
        tensors: ctx.tensors,
        accesses: ctx.accesses,
        indices: ctx.indices,
        extents: ctx.extents,
        n_scalars: ctx.n_scalars,
        root,
    })
}

impl LoweredProgram {
    /// Display names of the output tensors this program writes.
    pub fn output_names(&self) -> Vec<&str> {
        self.tensors
            .iter()
            .filter(|t| t.kind == SlotKind::Output)
            .map(|t| t.name.as_str())
            .collect()
    }

    /// The inferred extent of a loop index, if the program mentions it.
    pub fn extent_of(&self, index: &Index) -> Option<usize> {
        self.indices.iter().position(|i| i == index).map(|slot| self.extents[slot])
    }
}

impl<'a> Ctx<'a> {
    fn index_slot(&mut self, index: &Index) -> usize {
        if let Some(&s) = self.index_ids.get(index) {
            return s;
        }
        let s = self.indices.len();
        self.indices.push(index.clone());
        self.index_ids.insert(index.clone(), s);
        self.extents.push(0);
        s
    }

    fn tensor_dims(&self, name: &str) -> Result<Vec<usize>, ExecError> {
        if let Some(t) = self.inputs.get(name) {
            Ok(t.dims().to_vec())
        } else if let Some(t) = self.outputs.get(name) {
            Ok(t.dims().to_vec())
        } else {
            Err(ExecError::UnknownTensor { name: name.to_string() })
        }
    }

    fn tensor_slot(&mut self, tref: &TensorRef) -> Result<usize, ExecError> {
        let name = tref.display_name();
        if let Some(&s) = self.tensor_ids.get(&name) {
            return Ok(s);
        }
        let kind = if let Some(t) = self.inputs.get(&name) {
            if self.outputs.contains_key(&name) {
                return Err(ExecError::InputOutputClash { name });
            }
            match t {
                Tensor::Dense(_) => SlotKind::DenseInput,
                Tensor::Sparse(_) => SlotKind::SparseInput,
            }
        } else if self.outputs.contains_key(&name) {
            SlotKind::Output
        } else {
            return Err(ExecError::UnknownTensor { name });
        };
        let s = self.tensors.len();
        self.tensors.push(TensorSlot { name: name.clone(), kind });
        self.tensor_ids.insert(name, s);
        Ok(s)
    }

    /// First pass: infer every index's extent from the accesses.
    fn infer_extents(&mut self, stmt: &Stmt) -> Result<(), ExecError> {
        let mut accesses: Vec<Access> = Vec::new();
        collect_accesses(stmt, &mut accesses);
        for access in &accesses {
            let name = access.tensor.display_name();
            let dims = self.tensor_dims(&name)?;
            if dims.len() != access.indices.len() {
                return Err(ExecError::AccessRankMismatch {
                    name,
                    rank: dims.len(),
                    subscripts: access.indices.len(),
                });
            }
            for (mode, index) in access.indices.iter().enumerate() {
                let slot = self.index_slot(index);
                let extent = dims[mode];
                if self.extents[slot] == 0 {
                    self.extents[slot] = extent;
                } else if self.extents[slot] != extent {
                    return Err(ExecError::ExtentMismatch {
                        index: index.clone(),
                        a: self.extents[slot],
                        b: extent,
                    });
                }
            }
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<LStmt, ExecError> {
        match stmt {
            Stmt::Block(ss) => {
                let lowered: Result<Vec<LStmt>, ExecError> =
                    ss.iter().map(|s| self.lower_stmt(s)).collect();
                Ok(LStmt::Seq(lowered?))
            }
            Stmt::Loop { index, body } => self.lower_loop(index, body),
            Stmt::If { cond, body } => {
                let cond = self.lower_cond(cond)?;
                let body = self.lower_stmt(body)?;
                Ok(LStmt::If { cond, body: Box::new(body) })
            }
            Stmt::Let { name, value, body } => {
                let lvalue = self.lower_expr(value)?;
                let slot = self.n_scalars;
                self.n_scalars += 1;
                self.scalar_scope.push((name.clone(), slot));
                let lbody = self.lower_stmt(body)?;
                self.scalar_scope.pop();
                // A `let` binding exactly one sparse tracked access whose
                // scalar annihilates every assignment in the body lets us
                // skip the body when the access is unstored.
                let skip_if_missing = match (&lvalue, value) {
                    (LExpr::ReadSparsePath { access, .. }, Expr::Access(a))
                        if all_assignments_annihilate_scalar(body, name, a) =>
                    {
                        Some(*access)
                    }
                    _ => None,
                };
                Ok(LStmt::Let { slot, value: lvalue, skip_if_missing, body: Box::new(lbody) })
            }
            Stmt::Workspace { name, init, body } => {
                let slot = self.n_scalars;
                self.n_scalars += 1;
                self.scalar_scope.push((name.clone(), slot));
                let lbody = self.lower_stmt(body)?;
                self.scalar_scope.pop();
                Ok(LStmt::Workspace { slot, init: *init, body: Box::new(lbody) })
            }
            Stmt::Assign { lhs, op, rhs } => {
                let rhs_marked = mark_annihilators(rhs, *op);
                let lrhs = self.lower_expr_marked(&rhs_marked)?;
                let target = match lhs {
                    Lhs::Tensor(access) => {
                        let tensor = self.tensor_slot(&access.tensor)?;
                        if self.tensors[tensor].kind != SlotKind::Output {
                            return Err(ExecError::InputOutputClash {
                                name: access.tensor.display_name(),
                            });
                        }
                        let modes = self.bound_modes(&access.indices)?;
                        LTarget::Output { tensor, modes }
                    }
                    Lhs::Scalar(name) => LTarget::Scalar(self.scalar_lookup(name)?),
                };
                let can_miss = expr_can_miss(&lrhs);
                Ok(LStmt::Assign { target, op: *op, rhs: lrhs, can_miss })
            }
        }
    }

    fn scalar_lookup(&self, name: &str) -> Result<usize, ExecError> {
        self.scalar_scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .ok_or_else(|| ExecError::UnboundScalar { name: name.to_string() })
    }

    fn bound_modes(&mut self, indices: &[Index]) -> Result<Vec<usize>, ExecError> {
        indices
            .iter()
            .map(|i| {
                let slot = self.index_slot(i);
                if self.bound_at.contains_key(&slot) {
                    Ok(slot)
                } else {
                    Err(ExecError::UnboundIndex { index: i.clone() })
                }
            })
            .collect()
    }

    fn lower_loop(&mut self, index: &Index, body: &Stmt) -> Result<LStmt, ExecError> {
        let idx = self.index_slot(index);
        if self.extents[idx] == 0 {
            return Err(ExecError::UnknownExtent { index: index.clone() });
        }
        let depth = self.depth;
        self.bound_at.insert(idx, depth);
        self.depth += 1;

        // Split the direct `if` child into bounds and a residual guard.
        let (lo, hi, inner) = self.extract_bounds(idx, body);

        // Find the accesses this loop advances, pick drivers.
        let saved_state = self.advance_state.clone();
        let (drivers, probes) = self.plan_advances(index, &inner)?;

        let lowered_body = self.lower_stmt(&inner)?;

        self.advance_state = saved_state;
        self.depth -= 1;
        self.bound_at.remove(&idx);

        Ok(LStmt::Loop {
            idx,
            extent: self.extents[idx],
            lo,
            hi,
            drivers,
            probes,
            body: Box::new(lowered_body),
        })
    }

    /// Splits comparisons between this loop's index and bound outer
    /// indices out of the loop's direct `if` child, returning
    /// `(lo_bounds, hi_bounds, residual_body)`.
    fn extract_bounds(&self, idx: usize, body: &Stmt) -> (Vec<LBound>, Vec<LBound>, Stmt) {
        let Stmt::If { cond, body: inner } = body else {
            return (Vec::new(), Vec::new(), body.clone());
        };
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        let mut residual = Vec::new();
        for conj in cond.conjuncts() {
            match &conj {
                Cond::Cmp(op, a, b) => {
                    let a_slot = self.index_ids.get(a).copied();
                    let b_slot = self.index_ids.get(b).copied();
                    let (op, this, other) = if a_slot == Some(idx) {
                        (*op, a_slot, b_slot)
                    } else if b_slot == Some(idx) {
                        (op.flip(), b_slot, a_slot)
                    } else {
                        residual.push(conj);
                        continue;
                    };
                    debug_assert_eq!(this, Some(idx));
                    let Some(other) = other else {
                        residual.push(conj);
                        continue;
                    };
                    if !self.bound_at.contains_key(&other) || other == idx {
                        residual.push(conj);
                        continue;
                    }
                    match op {
                        CmpOp::Le => hi.push(LBound { idx: other, delta: 0 }),
                        CmpOp::Lt => hi.push(LBound { idx: other, delta: -1 }),
                        CmpOp::Ge => lo.push(LBound { idx: other, delta: 0 }),
                        CmpOp::Gt => lo.push(LBound { idx: other, delta: 1 }),
                        CmpOp::Eq => {
                            lo.push(LBound { idx: other, delta: 0 });
                            hi.push(LBound { idx: other, delta: 0 });
                        }
                        CmpOp::Ne => residual.push(conj),
                    }
                }
                _ => residual.push(conj),
            }
        }
        (lo, hi, Stmt::guarded(Cond::and(residual), (**inner).clone()))
    }

    /// Determines which sparse accesses this loop advances and which may
    /// drive it.
    fn plan_advances(
        &mut self,
        index: &Index,
        subtree: &Stmt,
    ) -> Result<(Vec<Advance>, Vec<Advance>), ExecError> {
        let mut accesses: Vec<Access> = Vec::new();
        collect_accesses_rhs(subtree, &mut accesses);
        let mut drivers = Vec::new();
        let mut probes = Vec::new();
        let mut seen: Vec<AccessKey> = Vec::new();
        for access in &accesses {
            let name = access.tensor.display_name();
            let Some(Tensor::Sparse(sparse)) = self.inputs.get(&name) else {
                continue;
            };
            let key: AccessKey = (name.clone(), access.indices.clone());
            if seen.contains(&key) {
                continue;
            }
            seen.push(key.clone());
            // Mode this loop binds for the access; a repeated index is
            // non-concordant.
            let positions: Vec<usize> = access
                .indices
                .iter()
                .enumerate()
                .filter(|(_, i)| *i == index)
                .map(|(m, _)| m)
                .collect();
            let [m] = positions.as_slice() else {
                continue;
            };
            let m = *m;
            // All earlier modes must already be bound (at outer loops),
            // all later modes must be unbound.
            let earlier_bound = access.indices[..m].iter().all(|i| {
                self.index_ids
                    .get(i)
                    .is_some_and(|s| self.bound_at.get(s).is_some_and(|&d| d < self.depth - 1))
            });
            let later_unbound = access.indices[m + 1..]
                .iter()
                .all(|i| self.index_ids.get(i).is_none_or(|s| !self.bound_at.contains_key(s)));
            if !earlier_bound || !later_unbound {
                continue;
            }
            // Tracking must proceed level by level.
            let next = self.advance_state.get(&key).copied().unwrap_or(0);
            if next != m {
                continue;
            }
            let tensor = self.tensor_slot(&access.tensor)?;
            let slot = *self.access_ids.entry(key.clone()).or_insert_with(|| {
                self.accesses.push(AccessSlot { tensor, rank: access.indices.len() });
                self.accesses.len() - 1
            });
            self.advance_state.insert(key, m + 1);
            let advance = Advance { access: slot, level: m };
            let is_compressed_level =
                matches!(sparse.formats()[m], LevelFormat::Sparse | LevelFormat::RunLength);
            if is_compressed_level && subtree_annihilates(subtree, access) {
                drivers.push(advance);
            } else {
                probes.push(advance);
            }
        }
        Ok((drivers, probes))
    }

    fn lower_cond(&mut self, cond: &Cond) -> Result<LCond, ExecError> {
        Ok(match cond {
            Cond::True => LCond::True,
            Cond::Cmp(op, a, b) => {
                let sa = self.bound_modes(std::slice::from_ref(a))?[0];
                let sb = self.bound_modes(std::slice::from_ref(b))?[0];
                LCond::Cmp(*op, sa, sb)
            }
            Cond::And(cs) => {
                LCond::And(cs.iter().map(|c| self.lower_cond(c)).collect::<Result<_, _>>()?)
            }
            Cond::Or(cs) => {
                LCond::Or(cs.iter().map(|c| self.lower_cond(c)).collect::<Result<_, _>>()?)
            }
        })
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<LExpr, ExecError> {
        self.lower_expr_marked(&MarkedExpr { expr: expr.clone(), annihilators: Vec::new() })
    }

    fn lower_expr_marked(&mut self, marked: &MarkedExpr) -> Result<LExpr, ExecError> {
        self.lower_expr_inner(&marked.expr, &marked.annihilators)
    }

    fn lower_expr_inner(
        &mut self,
        expr: &Expr,
        annihilators: &[Access],
    ) -> Result<LExpr, ExecError> {
        Ok(match expr {
            Expr::Literal(v) => LExpr::Lit(*v),
            Expr::Scalar(name) => LExpr::Scalar(self.scalar_lookup(name)?),
            Expr::Access(access) => {
                let tensor = self.tensor_slot(&access.tensor)?;
                let modes = self.bound_modes(&access.indices)?;
                let annihilator = annihilators.contains(access);
                match self.tensors[tensor].kind {
                    SlotKind::DenseInput => LExpr::ReadDense { tensor, modes },
                    SlotKind::Output => LExpr::ReadOutput { tensor, modes },
                    SlotKind::SparseInput => {
                        let key: AccessKey = (access.tensor.display_name(), access.indices.clone());
                        let fully_tracked = self
                            .advance_state
                            .get(&key)
                            .is_some_and(|&next| next == access.indices.len());
                        match (fully_tracked, self.access_ids.get(&key)) {
                            (true, Some(&slot)) => LExpr::ReadSparsePath {
                                access: slot,
                                tensor,
                                rank: access.indices.len(),
                                annihilator,
                            },
                            _ => LExpr::ReadSparseRandom { tensor, modes, annihilator },
                        }
                    }
                }
            }
            Expr::Call { op, args } => LExpr::Call {
                op: *op,
                args: args
                    .iter()
                    .map(|a| self.lower_expr_inner(a, annihilators))
                    .collect::<Result<_, _>>()?,
            },
            Expr::CmpVal { op, lhs, rhs } => {
                let a = self.bound_modes(std::slice::from_ref(lhs))?[0];
                let b = self.bound_modes(std::slice::from_ref(rhs))?[0];
                LExpr::CmpVal { op: *op, a, b }
            }
            Expr::Lookup { table, index } => LExpr::Lookup {
                table: table.clone(),
                index: Box::new(self.lower_expr_inner(index, annihilators)?),
            },
        })
    }
}

fn expr_can_miss(expr: &LExpr) -> bool {
    match expr {
        LExpr::ReadSparsePath { annihilator, .. } | LExpr::ReadSparseRandom { annihilator, .. } => {
            *annihilator
        }
        LExpr::Call { args, .. } => args.iter().any(expr_can_miss),
        LExpr::Lookup { index, .. } => expr_can_miss(index),
        LExpr::Lit(_)
        | LExpr::Scalar(_)
        | LExpr::ReadDense { .. }
        | LExpr::ReadOutput { .. }
        | LExpr::CmpVal { .. } => false,
    }
}

struct MarkedExpr {
    expr: Expr,
    annihilators: Vec<Access>,
}

/// Collects the sparse accesses in *annihilating position* of an
/// assignment: for `+=`, factors of the top-level product; for
/// `min=`/`max=`, summands of the top-level sum (tropical product).
fn mark_annihilators(rhs: &Expr, op: AssignOp) -> MarkedExpr {
    let mut annihilators = Vec::new();
    let payload_op = match op {
        AssignOp::Add => Some(BinOp::Mul),
        AssignOp::Min | AssignOp::Max => Some(BinOp::Add),
        AssignOp::Overwrite => None,
    };
    if let Some(payload) = payload_op {
        match rhs {
            Expr::Access(a) => annihilators.push(a.clone()),
            Expr::Call { op, args } if *op == payload => {
                for arg in args {
                    if let Expr::Access(a) = arg {
                        annihilators.push(a.clone());
                    }
                }
            }
            _ => {}
        }
    }
    MarkedExpr { expr: rhs.clone(), annihilators }
}

/// Collects every access in the subtree (assignment targets included).
fn collect_accesses(stmt: &Stmt, out: &mut Vec<Access>) {
    match stmt {
        Stmt::Block(ss) => {
            for s in ss {
                collect_accesses(s, out);
            }
        }
        Stmt::Loop { body, .. } | Stmt::If { body, .. } | Stmt::Workspace { body, .. } => {
            collect_accesses(body, out)
        }
        Stmt::Let { value, body, .. } => {
            out.extend(value.accesses().into_iter().cloned());
            collect_accesses(body, out);
        }
        Stmt::Assign { lhs, rhs, .. } => {
            if let Lhs::Tensor(a) = lhs {
                out.push(a.clone());
            }
            out.extend(rhs.accesses().into_iter().cloned());
        }
    }
}

/// Collects read-side accesses only.
fn collect_accesses_rhs(stmt: &Stmt, out: &mut Vec<Access>) {
    match stmt {
        Stmt::Block(ss) => {
            for s in ss {
                collect_accesses_rhs(s, out);
            }
        }
        Stmt::Loop { body, .. } | Stmt::If { body, .. } | Stmt::Workspace { body, .. } => {
            collect_accesses_rhs(body, out)
        }
        Stmt::Let { value, body, .. } => {
            out.extend(value.accesses().into_iter().cloned());
            collect_accesses_rhs(body, out);
        }
        Stmt::Assign { rhs, .. } => out.extend(rhs.accesses().into_iter().cloned()),
    }
}

/// Returns `true` if every assignment in `subtree` annihilates when
/// `access` reads its fill value — the soundness condition for letting
/// `access` drive a loop (skip unstored coordinates).
fn subtree_annihilates(subtree: &Stmt, access: &Access) -> bool {
    fn walk(stmt: &Stmt, access: &Access, bound_scalars: &mut Vec<(String, bool)>) -> bool {
        match stmt {
            Stmt::Block(ss) => ss.iter().all(|s| walk(s, access, bound_scalars)),
            Stmt::Loop { body, .. } | Stmt::If { body, .. } | Stmt::Workspace { body, .. } => {
                walk(body, access, bound_scalars)
            }
            Stmt::Let { name, value, body } => {
                // A scalar is an alias for the access either directly or
                // transitively through another alias (loop-invariant code
                // motion introduces such chains).
                let is_access = match value {
                    Expr::Access(a) => a == access,
                    Expr::Scalar(n) => scalar_is_alias(n, bound_scalars),
                    _ => false,
                };
                bound_scalars.push((name.clone(), is_access));
                let ok = walk(body, access, bound_scalars);
                bound_scalars.pop();
                ok
            }
            Stmt::Assign { op, rhs, .. } => assignment_annihilates(rhs, *op, access, bound_scalars),
        }
    }
    let mut scalars = Vec::new();
    walk(subtree, access, &mut scalars)
}

fn scalar_is_alias(name: &str, bound_scalars: &[(String, bool)]) -> bool {
    bound_scalars.iter().rev().find(|(n, _)| n == name).is_some_and(|(_, is_access)| *is_access)
}

fn assignment_annihilates(
    rhs: &Expr,
    op: AssignOp,
    access: &Access,
    bound_scalars: &[(String, bool)],
) -> bool {
    let refers = |e: &Expr| -> bool {
        match e {
            Expr::Access(a) => a == access,
            Expr::Scalar(name) => scalar_is_alias(name, bound_scalars),
            _ => false,
        }
    };
    let payload_op = match op {
        AssignOp::Add => BinOp::Mul,
        AssignOp::Min | AssignOp::Max => BinOp::Add,
        AssignOp::Overwrite => return false,
    };
    match rhs {
        e if refers(e) => true,
        Expr::Call { op, args } if *op == payload_op => args.iter().any(refers),
        _ => false,
    }
}

fn all_assignments_annihilate_scalar(body: &Stmt, scalar: &str, access: &Access) -> bool {
    // Within the let's body, `scalar` is the access; aliases of it (lets
    // bound to the scalar or to the access) count too.
    fn walk(stmt: &Stmt, access: &Access, bound_scalars: &mut Vec<(String, bool)>) -> bool {
        match stmt {
            Stmt::Block(ss) => ss.iter().all(|s| walk(s, access, bound_scalars)),
            Stmt::Loop { body, .. } | Stmt::If { body, .. } | Stmt::Workspace { body, .. } => {
                walk(body, access, bound_scalars)
            }
            Stmt::Let { name, value, body } => {
                let is_alias = match value {
                    Expr::Access(a) => a == access,
                    Expr::Scalar(n) => scalar_is_alias(n, bound_scalars),
                    _ => false,
                };
                bound_scalars.push((name.clone(), is_alias));
                let ok = walk(body, access, bound_scalars);
                bound_scalars.pop();
                ok
            }
            Stmt::Assign { op, rhs, .. } => assignment_annihilates(rhs, *op, access, bound_scalars),
        }
    }
    let mut scalars = vec![(scalar.to_string(), true)];
    walk(body, access, &mut scalars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;
    use systec_tensor::{CooTensor, SparseTensor, CSR};

    fn bindings() -> (HashMap<String, Tensor>, HashMap<String, DenseTensor>) {
        let mut coo = CooTensor::new(vec![4, 4]);
        coo.push(&[0, 1], 1.0);
        coo.push(&[2, 3], 2.0);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), Tensor::Sparse(SparseTensor::from_coo(&coo, &CSR).unwrap()));
        inputs.insert("x".to_string(), Tensor::Dense(DenseTensor::zeros(vec![4])));
        let mut outputs = HashMap::new();
        outputs.insert("y".to_string(), DenseTensor::zeros(vec![4]));
        (inputs, outputs)
    }

    fn spmv() -> Stmt {
        Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        )
    }

    #[test]
    fn lowers_spmv_with_inner_driver() {
        let (inputs, outputs) = bindings();
        let p = lower(&spmv(), &inputs, &outputs).unwrap();
        assert_eq!(p.extent_of(&Index::new("i")), Some(4));
        // Outer loop over i advances A at level 0 (dense -> probe);
        // inner loop over j drives from A's sparse level 1.
        let LStmt::Loop { drivers, probes, body, .. } = &p.root else {
            panic!("expected outer loop");
        };
        assert!(drivers.is_empty());
        assert_eq!(probes.len(), 1);
        let LStmt::Loop { drivers, .. } = body.as_ref() else {
            panic!("expected inner loop");
        };
        assert_eq!(drivers.len(), 1);
        assert_eq!(drivers[0].level, 1);
    }

    #[test]
    fn bounds_extracted_from_guard() {
        let (inputs, outputs) = bindings();
        // for j, i: if i <= j: y[i] += A[i, j] * x[j]  — discordant loop
        // order, so A reads are random access, but the i bound still lifts.
        let s = Stmt::loops(
            [idx("j"), idx("i")],
            Stmt::guarded(
                le("i", "j"),
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
            ),
        );
        let p = lower(&s, &inputs, &outputs).unwrap();
        let LStmt::Loop { body, .. } = &p.root else { panic!() };
        let LStmt::Loop { hi, lo, .. } = body.as_ref() else { panic!() };
        assert_eq!(hi.len(), 1);
        assert_eq!(hi[0].delta, 0);
        assert!(lo.is_empty());
    }

    #[test]
    fn ne_condition_stays_residual() {
        let (inputs, outputs) = bindings();
        let s = Stmt::loops(
            [idx("j"), idx("i")],
            Stmt::guarded(
                ne("i", "j"),
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
            ),
        );
        let p = lower(&s, &inputs, &outputs).unwrap();
        let LStmt::Loop { body, .. } = &p.root else { panic!() };
        let LStmt::Loop { hi, body, .. } = body.as_ref() else { panic!() };
        assert!(hi.is_empty());
        assert!(matches!(body.as_ref(), LStmt::If { .. }));
    }

    #[test]
    fn eq_condition_becomes_point_bounds() {
        let (inputs, outputs) = bindings();
        let s = Stmt::loops(
            [idx("j"), idx("i")],
            Stmt::guarded(
                eq("i", "j"),
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
            ),
        );
        let p = lower(&s, &inputs, &outputs).unwrap();
        let LStmt::Loop { body, .. } = &p.root else { panic!() };
        let LStmt::Loop { hi, lo, .. } = body.as_ref() else { panic!() };
        assert_eq!((lo.len(), hi.len()), (1, 1));
    }

    #[test]
    fn unknown_tensor_is_reported() {
        let (inputs, outputs) = bindings();
        let s = Stmt::loops([idx("i")], assign(access("y", ["i"]), access("zzz", ["i"]).into()));
        match lower(&s, &inputs, &outputs) {
            Err(ExecError::UnknownTensor { name }) => assert_eq!(name, "zzz"),
            other => panic!("expected UnknownTensor, got {other:?}"),
        }
    }

    #[test]
    fn rank_mismatch_is_reported() {
        let (inputs, outputs) = bindings();
        let s = Stmt::loops([idx("i")], assign(access("y", ["i"]), access("A", ["i"]).into()));
        assert!(matches!(lower(&s, &inputs, &outputs), Err(ExecError::AccessRankMismatch { .. })));
    }

    #[test]
    fn extent_conflict_is_reported() {
        let (inputs, outputs) = bindings();
        // x has extent 4; using i for both A's mode 0 (4) is fine, but a
        // 3-element output clashes.
        let mut outputs = outputs;
        outputs.insert("z".to_string(), DenseTensor::zeros(vec![3]));
        let s = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::block([
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
                assign(access("z", ["i"]), access("x", ["i"]).into()),
            ]),
        );
        assert!(matches!(lower(&s, &inputs, &outputs), Err(ExecError::ExtentMismatch { .. })));
    }

    #[test]
    fn writing_to_input_is_rejected() {
        let (inputs, outputs) = bindings();
        let s = Stmt::loops([idx("i"), idx("j")], assign(access("A", ["i", "j"]), lit(1.0)));
        assert!(matches!(lower(&s, &inputs, &outputs), Err(ExecError::InputOutputClash { .. })));
    }

    #[test]
    fn unbound_scalar_is_rejected() {
        let (inputs, outputs) = bindings();
        let s = Stmt::loops([idx("i")], assign(access("y", ["i"]), scalar("nope")));
        assert!(matches!(lower(&s, &inputs, &outputs), Err(ExecError::UnboundScalar { .. })));
    }

    #[test]
    fn overwrite_assignment_disables_driver() {
        let (inputs, outputs) = bindings();
        // y[i] = A[i, j] — an overwrite must not skip unstored coords.
        let s = Stmt::loops(
            [idx("i"), idx("j")],
            store(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        );
        let p = lower(&s, &inputs, &outputs).unwrap();
        let LStmt::Loop { body, .. } = &p.root else { panic!() };
        let LStmt::Loop { drivers, probes, .. } = body.as_ref() else { panic!() };
        assert!(drivers.is_empty());
        assert_eq!(probes.len(), 1);
    }

    #[test]
    fn min_assignment_with_add_rhs_allows_driver() {
        let (inputs, outputs) = bindings();
        // Bellman-Ford: y[i] min= A[i, j] + x[j] (concordant order i, j).
        let s = Stmt::loops(
            [idx("i"), idx("j")],
            assign_op(
                access("y", ["i"]),
                systec_ir::AssignOp::Min,
                add([access("A", ["i", "j"]), access("x", ["j"])]),
            ),
        );
        let p = lower(&s, &inputs, &outputs).unwrap();
        let LStmt::Loop { body, .. } = &p.root else { panic!() };
        let LStmt::Loop { drivers, .. } = body.as_ref() else { panic!() };
        assert_eq!(drivers.len(), 1);
    }
}
