//! Loop-invariant condition hoisting.
//!
//! The symmetrizer guards loop bodies with conditions like
//! `i <= k && k <= l` placed just inside the *innermost* loop. Before
//! comparisons can be lifted into loop bounds, each conjunct must float
//! up to the shallowest loop whose index it mentions. This pass performs
//! that motion; it is semantics-preserving because a hoisted conjunct is
//! invariant in every loop it crosses and guards the entire loop body.

use systec_ir::{Cond, Index, Stmt};

/// Floats loop-invariant conjuncts of `if` guards upward, out of loops
/// whose index they do not mention, and merges directly nested `if`s.
///
/// # Examples
///
/// ```
/// use systec_ir::build::*;
/// use systec_ir::Stmt;
/// use systec_exec::hoist_conditions;
///
/// // for l, k, j:  if j <= k && k <= l: ...  — the `k <= l` conjunct
/// // does not mention j, so it floats above the j loop.
/// let s = Stmt::loops(
///     [idx("l"), idx("k"), idx("j")],
///     Stmt::guarded(
///         and([le("j", "k"), le("k", "l")]),
///         assign(access("y", ["j"]), access("A", ["j", "k", "l"]).into()),
///     ),
/// );
/// let hoisted = hoist_conditions(s);
/// let printed = hoisted.to_string();
/// let k_line = printed.lines().position(|l| l.contains("if k <= l")).unwrap();
/// let j_line = printed.lines().position(|l| l.contains("for j")).unwrap();
/// assert!(k_line < j_line, "k <= l must sit above the j loop:\n{printed}");
/// ```
pub fn hoist_conditions(stmt: Stmt) -> Stmt {
    match stmt {
        Stmt::Loop { index, body } => {
            let body = hoist_conditions(*body);
            match body {
                Stmt::If { cond, body: inner } => {
                    let (outer, keep) = split_conjuncts(cond, &index);
                    let looped = Stmt::Loop { index, body: Box::new(Stmt::guarded(keep, *inner)) };
                    Stmt::guarded(outer, looped)
                }
                other => Stmt::Loop { index, body: Box::new(other) },
            }
        }
        Stmt::If { cond, body } => {
            let body = hoist_conditions(*body);
            match body {
                Stmt::If { cond: inner_cond, body: inner } => {
                    Stmt::If { cond: Cond::and([cond, inner_cond]), body: inner }
                }
                other => Stmt::If { cond, body: Box::new(other) },
            }
        }
        // A `let` binds a pure value, so a guard that is its sole child
        // commutes with it — bubbling the guard up lets enclosing loops
        // lift it into bounds (and skips the bound value's evaluation
        // when the guard is false).
        Stmt::Let { name, value, body } => {
            let body = hoist_conditions(*body);
            match body {
                Stmt::If { cond, body: inner } => {
                    Stmt::If { cond, body: Box::new(Stmt::Let { name, value, body: inner }) }
                }
                other => Stmt::Let { name, value, body: Box::new(other) },
            }
        }
        other => other.map_children(&mut hoist_conditions),
    }
}

/// Splits a condition's conjuncts into those that do not mention `index`
/// (hoistable above its loop) and those that do (stay inside).
fn split_conjuncts(cond: Cond, index: &Index) -> (Cond, Cond) {
    let mut outer = Vec::new();
    let mut keep = Vec::new();
    for c in cond.conjuncts() {
        if c.indices().contains(index) {
            keep.push(c);
        } else {
            outer.push(c);
        }
    }
    (Cond::and(outer), Cond::and(keep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    #[test]
    fn hoists_through_multiple_loops() {
        // for l, k, i, j: if i <= k && k <= l: body   (MTTKRP shape)
        let s = Stmt::loops(
            [idx("l"), idx("k"), idx("i"), idx("j")],
            Stmt::guarded(
                and([le("i", "k"), le("k", "l")]),
                assign(access("C", ["i", "j"]), access("A", ["i", "k", "l"]).into()),
            ),
        );
        let h = hoist_conditions(s);
        let printed = h.to_string();
        // k <= l must appear between the k loop and the i loop; i <= k
        // between the i loop and the j loop.
        let lines: Vec<&str> = printed.lines().map(str::trim).collect();
        let pos = |needle: &str| {
            lines
                .iter()
                .position(|l| l.starts_with(needle))
                .unwrap_or_else(|| panic!("missing {needle} in:\n{printed}"))
        };
        assert!(pos("for k") < pos("if k <= l"));
        assert!(pos("if k <= l") < pos("for i"));
        assert!(pos("for i") < pos("if i <= k"));
        assert!(pos("if i <= k") < pos("for j"));
    }

    #[test]
    fn merges_nested_ifs() {
        let s = Stmt::guarded(
            le("i", "j"),
            Stmt::guarded(ne("i", "j"), assign(access("y", ["i"]), lit(1.0))),
        );
        let h = hoist_conditions(s);
        assert_eq!(h.to_string(), "if i <= j && i != j:\n  y[i] += 1");
    }

    #[test]
    fn keeps_condition_mentioning_loop_index() {
        let s = Stmt::loops(
            [idx("j"), idx("i")],
            Stmt::guarded(le("i", "j"), assign(access("y", ["i"]), lit(1.0))),
        );
        let h = hoist_conditions(s.clone());
        // i <= j mentions i, so it stays just inside the i loop.
        assert_eq!(h, s);
    }

    #[test]
    fn or_condition_hoists_as_a_unit() {
        // (i == k || k == l) does not mention j — must float above loop j
        // in one piece.
        let s = Stmt::loops(
            [idx("l"), idx("k"), idx("i"), idx("j")],
            Stmt::guarded(
                or([eq("i", "k"), eq("k", "l")]),
                assign(access("C", ["i", "j"]), access("A", ["i", "k", "l"]).into()),
            ),
        );
        let printed = hoist_conditions(s).to_string();
        let lines: Vec<&str> = printed.lines().map(str::trim).collect();
        let if_pos = lines.iter().position(|l| l.starts_with("if i == k || k == l")).unwrap();
        let forj_pos = lines.iter().position(|l| l.starts_with("for j")).unwrap();
        assert!(if_pos < forj_pos, "got:\n{printed}");
    }

    #[test]
    fn blocks_hoist_children_independently() {
        let block = Stmt::block([
            Stmt::loops(
                [idx("i")],
                Stmt::guarded(le("i", "j"), assign(access("y", ["i"]), lit(1.0))),
            ),
            Stmt::loops(
                [idx("i")],
                Stmt::guarded(eq("j", "k"), assign(access("z", ["i"]), lit(2.0))),
            ),
        ]);
        let printed = hoist_conditions(block).to_string();
        // Second child's guard (j == k, invariant in i) floats above its loop.
        assert!(printed.contains("if j == k:\n  for i:"), "got:\n{printed}");
    }
}
