//! Differential ladders for the fused-body specialization layer: one
//! ladder per recognized pattern (dot, axpy, scale-store, gather-dot,
//! RLE-strided dot, the symmetric dot-axpy pair), each asserting the
//! selection *by name* in the disassembly and then agreement between
//! the bytecode VM (which takes the fused path) and the tree-walking
//! interpreter (which has no fused path at all) — byte-identical in
//! scalar lane mode, within 1e-9 in the default lane mode, counters
//! exact in both — across storage formats and random data. A
//! fallback ladder proves bodies the selector rejects still execute the
//! general step list with identical results.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use systec_codegen::{CompiledKernel, CounterMode, ExecContext, LaneMode, Parallelism};
use systec_exec::{alloc_outputs, hoist_conditions, lower, run_lowered, Counters};
use systec_ir::build::*;
use systec_ir::{AssignOp, Stmt};
use systec_tensor::{CooTensor, DenseTensor, LevelFormat, SparseTensor, Tensor};

/// Compiles `prog`, asserting every `needle` appears in the
/// disassembly, then runs both backends on it: the scalar-mode VM must
/// be byte-identical to the interpreter, the lane-mode VM (the
/// default) within 1e-9, and counters exact in both modes. Returns the
/// lane-mode outputs.
fn select_and_match(
    prog: &Stmt,
    inputs: &HashMap<String, Tensor>,
    needles: &[&str],
    label: &str,
) -> HashMap<String, DenseTensor> {
    let hoisted = hoist_conditions(prog.clone());
    let outputs_init = alloc_outputs(&hoisted, inputs).expect(label);
    let lowered = lower(&hoisted, inputs, &outputs_init).expect(label);
    let compiled = CompiledKernel::compile(&lowered, inputs, &outputs_init).expect(label);
    let dis = compiled.disassemble();
    for needle in needles {
        assert!(dis.contains(needle), "{label}: expected {needle:?} in:\n{dis}");
    }

    let mut out_vm = outputs_init.clone();
    let c_vm = compiled.run(inputs, &mut out_vm).expect(label);

    let mut scalar_ctx = ExecContext::new().with_lane_mode(LaneMode::Scalar);
    let mut out_scalar = outputs_init.clone();
    let mut c_scalar = Counters::new();
    compiled
        .run_with(inputs, &mut out_scalar, &mut scalar_ctx, Parallelism::Serial, &mut c_scalar)
        .expect(label);

    let mut out_interp = outputs_init;
    let c_interp = run_lowered(&lowered, inputs, &mut out_interp).expect(label);
    for (name, t) in &out_interp {
        assert_eq!(&out_scalar[name], t, "{label}: scalar-mode output {name} differs");
        let diff = out_vm[name].max_abs_diff(t).expect(label);
        assert!(diff < 1e-9, "{label}: lane-mode output {name} off by {diff:e}");
    }
    assert_eq!(c_vm, c_interp, "{label}: lane-mode counter parity violated");
    assert_eq!(c_scalar, c_interp, "{label}: scalar-mode counter parity violated");
    out_vm
}

/// Random sparse matrix with runs (so RunLength levels form runs).
fn random_matrix(n: usize, nnz: usize, formats: &[LevelFormat], r: &mut StdRng) -> Tensor {
    let mut coo = CooTensor::new(vec![n; formats.len()]);
    for _ in 0..nnz {
        let coords: Vec<usize> = (0..formats.len()).map(|_| r.gen_range(0..n)).collect();
        let v = [0.5, 1.0, 2.0][r.gen_range(0usize..3)];
        coo.set(&coords, v);
        if r.gen_bool(0.5) {
            let mut next = coords.clone();
            if next[formats.len() - 1] + 1 < n {
                next[formats.len() - 1] += 1;
                coo.set(&next, v);
            }
        }
    }
    Tensor::Sparse(SparseTensor::from_coo(&coo, formats).unwrap())
}

fn random_vec(n: usize, r: &mut StdRng) -> Tensor {
    Tensor::Dense(
        DenseTensor::from_vec(vec![n], (0..n).map(|_| r.gen_range(0.1..2.0)).collect()).unwrap(),
    )
}

const COMPRESSED: &[&[LevelFormat]] =
    &[&[LevelFormat::Dense, LevelFormat::Sparse], &[LevelFormat::Sparse, LevelFormat::Sparse]];

/// `y[i] += A[i,j] * x[j]` — a row dot into a loop-invariant output
/// cell: `FusedBody::Dot` with the register-held accumulator.
#[test]
fn dot_ladder() {
    for (k, formats) in COMPRESSED.iter().enumerate() {
        for seed in 0..6u64 {
            let mut r = StdRng::seed_from_u64(9000 + 100 * k as u64 + seed);
            let n = r.gen_range(3usize..9);
            let prog = Stmt::loops(
                [idx("i"), idx("j")],
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, n + 3, formats, &mut r));
            inputs.insert("x".to_string(), random_vec(n, &mut r));
            select_and_match(
                &prog,
                &inputs,
                &["kind: Dot", "VecSparseLoop"],
                &format!("dot formats={formats:?} seed={seed}"),
            );
        }
    }
}

/// `y[j] += 2·A[i,j]` — a strided reducing store per coordinate:
/// `FusedBody::Axpy`.
#[test]
fn axpy_ladder() {
    for (k, formats) in COMPRESSED.iter().enumerate() {
        for seed in 0..6u64 {
            let mut r = StdRng::seed_from_u64(9100 + 100 * k as u64 + seed);
            let n = r.gen_range(3usize..9);
            let prog = Stmt::loops(
                [idx("i"), idx("j")],
                assign(access("y", ["j"]), mul([lit(2.0), access("A", ["i", "j"]).into()])),
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, n + 3, formats, &mut r));
            select_and_match(
                &prog,
                &inputs,
                &["kind: Axpy"],
                &format!("axpy formats={formats:?} seed={seed}"),
            );
        }
    }
}

/// `C[i,j] = 2·B[i,j]` over a dense operand — an overwriting store per
/// coordinate of the vectorized dense loop: `FusedBody::ScaleStore`.
/// (An overwrite can't sparsify — every coordinate must be written — so
/// the drive is the counted dense loop.)
#[test]
fn scale_store_ladder() {
    for seed in 0..8u64 {
        let mut r = StdRng::seed_from_u64(9200 + seed);
        let n = r.gen_range(3usize..9);
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            store(access("C", ["i", "j"]), mul([lit(2.0), access("B", ["i", "j"]).into()])),
        );
        let mut inputs = HashMap::new();
        let data: Vec<f64> = (0..n * n).map(|_| r.gen_range(0.1..2.0)).collect();
        inputs.insert(
            "B".to_string(),
            Tensor::Dense(DenseTensor::from_vec(vec![n, n], data).unwrap()),
        );
        select_and_match(
            &prog,
            &inputs,
            &["kind: ScaleStore", "VecDenseLoop"],
            &format!("scale-store seed={seed}"),
        );
    }
}

/// `y[i] += A[i,j] * B[j,i]` — the second operand binds discordantly
/// and gathers per coordinate: `FusedBody::GatherDot` (with annihilator
/// miss semantics on the store).
#[test]
fn gather_dot_ladder() {
    for (k, formats) in COMPRESSED.iter().enumerate() {
        for seed in 0..6u64 {
            let mut r = StdRng::seed_from_u64(9300 + 100 * k as u64 + seed);
            let n = r.gen_range(3usize..9);
            let prog = Stmt::loops(
                [idx("i"), idx("j")],
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("B", ["j", "i"])])),
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, n + 3, formats, &mut r));
            inputs.insert("B".to_string(), random_matrix(n, n + 3, formats, &mut r));
            select_and_match(
                &prog,
                &inputs,
                &["kind: GatherDot", "LoadGather"],
                &format!("gather-dot formats={formats:?} seed={seed}"),
            );
        }
    }
}

/// The dot ladder over a run-length driver: `FusedBody::Dot` executed
/// by the run-expanding strided loop (`VecRleLoop`).
#[test]
fn rle_strided_dot_ladder() {
    for (k, formats) in [
        &[LevelFormat::Dense, LevelFormat::RunLength][..],
        &[LevelFormat::Sparse, LevelFormat::RunLength][..],
    ]
    .iter()
    .enumerate()
    {
        for seed in 0..6u64 {
            let mut r = StdRng::seed_from_u64(9400 + 100 * k as u64 + seed);
            let n = r.gen_range(4usize..10);
            let prog = Stmt::loops(
                [idx("i"), idx("j")],
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, 2 * n, formats, &mut r));
            inputs.insert("x".to_string(), random_vec(n, &mut r));
            select_and_match(
                &prog,
                &inputs,
                &["kind: Dot", "VecRleLoop"],
                &format!("rle-dot formats={formats:?} seed={seed}"),
            );
        }
    }
}

/// SSYMV's symmetric body — `let a = A[i,j]: w += a·x[j]; y[j] += a·x[i]`
/// — selects the combined `FusedBody::DotAxpy`.
#[test]
fn dot_axpy_ladder() {
    for (k, formats) in COMPRESSED.iter().enumerate() {
        for seed in 0..6u64 {
            let mut r = StdRng::seed_from_u64(9500 + 100 * k as u64 + seed);
            let n = r.gen_range(3usize..9);
            let body = Stmt::Let {
                name: "a".into(),
                value: access("A", ["i", "j"]).into(),
                body: Box::new(Stmt::block([
                    assign(access("y", ["i"]), mul([scalar("a"), access("x", ["j"]).into()])),
                    assign(access("y", ["j"]), mul([scalar("a"), access("x", ["i"]).into()])),
                ])),
            };
            let prog = Stmt::loops([idx("i"), idx("j")], body);
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, n + 3, formats, &mut r));
            inputs.insert("x".to_string(), random_vec(n, &mut r));
            select_and_match(
                &prog,
                &inputs,
                &["kind: DotAxpy"],
                &format!("dot-axpy formats={formats:?} seed={seed}"),
            );
        }
    }
}

/// A body the selector must reject: the fold reads the scalar slot it
/// accumulates into (`w += A[i,j]·w`), which a register-held
/// accumulator could not serve. The item carries `fused: None` and the
/// step list still produces byte-identical results.
#[test]
fn unmatched_body_falls_back_to_steps() {
    for (k, formats) in COMPRESSED.iter().enumerate() {
        for seed in 0..6u64 {
            let mut r = StdRng::seed_from_u64(9600 + 100 * k as u64 + seed);
            let n = r.gen_range(3usize..9);
            let prog = Stmt::loops(
                [idx("i")],
                Stmt::Workspace {
                    name: "w".into(),
                    init: 1.0,
                    body: Box::new(Stmt::block([
                        Stmt::loops(
                            [idx("j")],
                            Stmt::Assign {
                                lhs: systec_ir::Lhs::Scalar("w".into()),
                                op: AssignOp::Add,
                                rhs: mul([access("A", ["i", "j"]).into(), scalar("w")]),
                            },
                        ),
                        assign(access("y", ["i"]), scalar("w")),
                    ])),
                },
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, n + 3, formats, &mut r));
            let label = format!("fallback formats={formats:?} seed={seed}");
            let hoisted = hoist_conditions(prog.clone());
            let outputs_init = alloc_outputs(&hoisted, &inputs).expect(&label);
            let lowered = lower(&hoisted, &inputs, &outputs_init).expect(&label);
            let compiled = CompiledKernel::compile(&lowered, &inputs, &outputs_init).expect(&label);
            let dis = compiled.disassemble();
            assert!(
                !dis.contains("fused: Some"),
                "{label}: the self-referential fold must not fuse:\n{dis}"
            );
            let mut out_vm = outputs_init.clone();
            let c_vm = compiled.run(&inputs, &mut out_vm).expect(&label);
            let mut out_interp = outputs_init;
            let c_interp = run_lowered(&lowered, &inputs, &mut out_interp).expect(&label);
            for (name, t) in &out_interp {
                assert_eq!(&out_vm[name], t, "{label}: output {name} differs");
            }
            assert_eq!(c_vm, c_interp, "{label}: counter parity violated");
        }
    }
}

/// `CounterMode::Off` skips counter maintenance on the fused paths but
/// leaves the outputs byte-identical to an exact-mode run.
#[test]
fn counter_off_mode_keeps_outputs_identical() {
    let mut r = StdRng::seed_from_u64(9700);
    let n = 8;
    let prog = Stmt::loops(
        [idx("i"), idx("j")],
        assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
    );
    let mut inputs = HashMap::new();
    inputs.insert(
        "A".to_string(),
        random_matrix(n, 12, &[LevelFormat::Dense, LevelFormat::Sparse], &mut r),
    );
    inputs.insert("x".to_string(), random_vec(n, &mut r));
    let hoisted = hoist_conditions(prog);
    let outputs_init = alloc_outputs(&hoisted, &inputs).unwrap();
    let lowered = lower(&hoisted, &inputs, &outputs_init).unwrap();
    let compiled = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();

    let mut exact_ctx = ExecContext::new();
    let mut exact_out = outputs_init.clone();
    let mut exact_counters = Counters::new();
    compiled
        .run_with(&inputs, &mut exact_out, &mut exact_ctx, Parallelism::Serial, &mut exact_counters)
        .unwrap();

    let mut off_ctx = ExecContext::new().with_counter_mode(CounterMode::Off);
    let mut off_out = outputs_init;
    let mut off_counters = Counters::new();
    compiled
        .run_with(&inputs, &mut off_out, &mut off_ctx, Parallelism::Serial, &mut off_counters)
        .unwrap();

    assert_eq!(exact_out["y"], off_out["y"], "counter mode must not affect outputs");
    assert!(exact_counters.flops > 0, "exact mode counts work");
}
