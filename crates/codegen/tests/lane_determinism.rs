//! Bit-determinism of the explicit-lane runners under hostile floating
//! point: inputs seeded with NaN, signed zeros, and infinities run 20
//! times under serial and parallel execution, and every run must
//! produce bit-identical outputs. Outputs here are row-owned, so the
//! bits must also agree **across** thread counts (each row's fold runs
//! start-to-finish inside one chunk regardless of how many workers
//! there are); work counters are value-independent and must match the
//! scalar-mode runners exactly.

use std::collections::HashMap;

use systec_codegen::{CompiledKernel, ExecContext, LaneMode, Parallelism};
use systec_exec::{alloc_outputs, hoist_conditions, lower, Counters};
use systec_ir::build::*;
use systec_ir::{AssignOp, Einsum};
use systec_tensor::{CooTensor, DenseTensor, LevelFormat, SparseTensor, Tensor};

/// A deterministic value ladder that cycles hostile specials through
/// ordinary magnitudes: NaN, ±inf, -0.0, and values spread far enough
/// apart that fold order visibly changes the rounding.
fn hostile_value(k: usize) -> f64 {
    match k % 11 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => 1e-300,
        5 => -1e16,
        6 => 1e16,
        7 => 0.1,
        8 => -3.0,
        9 => 1e-16,
        _ => 7.5,
    }
}

fn hostile_matrix(n: usize, formats: &[LevelFormat]) -> Tensor {
    let mut coo = CooTensor::new(vec![n, n]);
    let mut k = 0;
    for i in 0..n {
        for j in 0..n {
            // ~40% occupancy with short runs, deterministic pattern.
            if (i * 7 + j * 3) % 5 < 2 {
                coo.set(&[i, j], hostile_value(k));
                k += 1;
            }
        }
    }
    Tensor::Sparse(SparseTensor::from_coo(&coo, formats).unwrap())
}

fn hostile_vec(n: usize, offset: usize) -> Tensor {
    Tensor::Dense(
        DenseTensor::from_vec(vec![n], (0..n).map(|j| hostile_value(j + offset)).collect())
            .unwrap(),
    )
}

/// Runs `einsum` 20 times under each parallelism setting, asserting
/// bit-identical outputs within and across settings, and exact counter
/// parity between the lane-mode and scalar-mode runners.
fn assert_lane_determinism(einsum: &Einsum, inputs: &HashMap<String, Tensor>, label: &str) {
    let hoisted = hoist_conditions(einsum.naive_program());
    let outputs_init = alloc_outputs(&hoisted, inputs).expect(label);
    let lowered = lower(&hoisted, inputs, &outputs_init).expect(label);
    let compiled = CompiledKernel::compile(&lowered, inputs, &outputs_init).expect(label);
    let out_name = einsum.output.tensor.display_name();

    let mut ctx = ExecContext::new();
    let mut reference: Option<(Vec<u64>, Counters)> = None;
    for par in [Parallelism::Serial, Parallelism::threads(2), Parallelism::threads(4)] {
        for rep in 0..20 {
            let mut outputs = outputs_init.clone();
            let mut counters = Counters::new();
            compiled.run_with(inputs, &mut outputs, &mut ctx, par, &mut counters).expect(label);
            let bits: Vec<u64> =
                outputs[&out_name].as_slice().iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some((bits, counters)),
                Some((b, c)) => {
                    assert_eq!(&bits, b, "{label}: {par:?} rep={rep} output bits drifted");
                    assert_eq!(&counters, c, "{label}: {par:?} rep={rep} counters drifted");
                }
            }
        }
    }

    // Scalar-mode runners do the same structural work: exact counter
    // parity (values legitimately differ in the last bit — lane merges
    // reassociate the folds).
    let mut scalar_ctx = ExecContext::new().with_lane_mode(LaneMode::Scalar);
    let mut outputs = outputs_init.clone();
    let mut c_scalar = Counters::new();
    compiled
        .run_with(inputs, &mut outputs, &mut scalar_ctx, Parallelism::Serial, &mut c_scalar)
        .expect(label);
    assert_eq!(c_scalar, reference.unwrap().1, "{label}: lane/scalar counter parity");
}

#[test]
fn lane_runners_are_bit_deterministic_on_hostile_floats() {
    // Rows average ~40% of n nonzeros; n is sized so they clear the
    // short-fiber cutover (LANE_MIN) and actually run the lane kernels.
    let n = 64;
    let formats: &[&[LevelFormat]] = &[
        &[LevelFormat::Dense, LevelFormat::Sparse],
        &[LevelFormat::Sparse, LevelFormat::Sparse],
        &[LevelFormat::Dense, LevelFormat::RunLength],
        &[LevelFormat::Dense, LevelFormat::Dense],
    ];
    for fmt in formats {
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), hostile_matrix(n, fmt));
        inputs.insert("x".to_string(), hostile_vec(n, 5));

        // Row dot: the laned Dot fused body (VecSparseLoop / VecRleLoop
        // / VecDenseLoop depending on the format).
        let spmv = Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("j")],
        );
        assert_lane_determinism(&spmv, &inputs, &format!("spmv {fmt:?}"));

        // Tropical fold: Min's +inf lane identity meets actual
        // infinities and NaN in the data.
        let minplus = Einsum::new(
            access("y", ["i"]),
            AssignOp::Min,
            add([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("j")],
        );
        assert_lane_determinism(&minplus, &inputs, &format!("min-plus {fmt:?}"));
    }

    // Gather dot: the laned GatherDot body with miss-annihilating loads.
    let mut inputs = HashMap::new();
    inputs.insert("A".to_string(), hostile_matrix(n, &[LevelFormat::Dense, LevelFormat::Sparse]));
    inputs.insert("B".to_string(), hostile_matrix(n, &[LevelFormat::Sparse, LevelFormat::Sparse]));
    let gather = Einsum::new(
        access("y", ["i"]),
        AssignOp::Add,
        mul([access("A", ["i", "j"]), access("B", ["j", "i"])]),
        [idx("i"), idx("j")],
    );
    assert_lane_determinism(&gather, &inputs, "gather-dot");
}
