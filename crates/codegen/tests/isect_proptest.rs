//! Property tests for the co-iteration vector loops (vendored proptest
//! shim): adversarial coordinate patterns — empty fibers, disjoint
//! sets, single-run RLE, duplicate-free scatter vs. dense-ish overlap —
//! drive the two-way intersection and run-length vector loops, checked
//! against a plain scalar oracle computed from the raw coordinates and
//! against the tree-walking interpreter (bit-equal values, exact
//! counters).

use std::collections::HashMap;

use proptest::prelude::*;
use systec_codegen::CompiledKernel;
use systec_exec::{alloc_outputs, hoist_conditions, lower, run_lowered};
use systec_ir::build::*;
use systec_ir::Stmt;
use systec_tensor::{CooTensor, DenseTensor, LevelFormat, SparseTensor, Tensor};

/// Materializes one generated fiber pattern as sorted (coord, value)
/// pairs within `0..n`.
fn fiber(pattern: usize, raw: &[(usize, f64)], n: usize, parity: usize) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> = match pattern {
        // Empty level: the loop must run (or skip) without touching it.
        0 => Vec::new(),
        // Disjoint sets: one side even coordinates, the other odd.
        1 => raw
            .iter()
            .map(|&(c, v)| {
                let c = (c % n) & !1;
                ((c + parity).min(n - 1), v)
            })
            .collect(),
        // Single run / dense-ish overlap: a contiguous block from 0.
        2 => (0..(raw.len() % n).max(1)).map(|c| (c, 0.5 + c as f64)).collect(),
        // Duplicate-free random scatter.
        _ => raw.iter().map(|&(c, v)| (c % n, v)).collect(),
    };
    out.sort_by_key(|&(c, _)| c);
    out.dedup_by_key(|&mut (c, _)| c);
    out
}

fn pack_1d(entries: &[(usize, f64)], n: usize, format: LevelFormat) -> Tensor {
    let mut coo = CooTensor::new(vec![n]);
    for &(c, v) in entries {
        coo.set(&[c], v);
    }
    Tensor::Sparse(SparseTensor::from_coo(&coo, &[format]).unwrap())
}

/// Runs `prog` on both backends, asserting exact agreement, and returns
/// the scalar output.
fn run_both(prog: &Stmt, inputs: &HashMap<String, Tensor>, out: &str) -> f64 {
    let hoisted = hoist_conditions(prog.clone());
    let outputs_init = alloc_outputs(&hoisted, inputs).unwrap();
    let lowered = lower(&hoisted, inputs, &outputs_init).unwrap();
    let compiled = CompiledKernel::compile(&lowered, inputs, &outputs_init).unwrap();
    let mut out_vm = outputs_init.clone();
    let c_vm = compiled.run(inputs, &mut out_vm).unwrap();
    let mut out_interp = outputs_init;
    let c_interp = run_lowered(&lowered, inputs, &mut out_interp).unwrap();
    assert_eq!(out_vm[out], out_interp[out], "backends disagree on values");
    assert_eq!(c_vm, c_interp, "backends disagree on counters");
    out_vm[out].get(&[])
}

/// The property cases must actually drive the vectorized loops, not a
/// general-dispatch fallback.
#[test]
fn oracle_programs_take_the_vector_paths() {
    let dot = Stmt::loops(
        [idx("k")],
        assign(access("s", [] as [&str; 0]), mul([access("a", ["k"]), access("b", ["k"])])),
    );
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), pack_1d(&[(0, 1.0), (2, 2.0)], 4, LevelFormat::Sparse));
    inputs.insert("b".to_string(), pack_1d(&[(2, 3.0)], 4, LevelFormat::Sparse));
    let hoisted = hoist_conditions(dot.clone());
    let outputs_init = alloc_outputs(&hoisted, &inputs).unwrap();
    let lowered = lower(&hoisted, &inputs, &outputs_init).unwrap();
    let compiled = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
    assert!(
        compiled.disassemble().contains("VecIsect"),
        "rank-1 dot must co-iterate through an intersection loop:\n{}",
        compiled.disassemble()
    );

    let rle = Stmt::loops(
        [idx("k")],
        assign(access("s", [] as [&str; 0]), mul([access("a", ["k"]), access("x", ["k"])])),
    );
    inputs.insert("a".to_string(), pack_1d(&[(0, 1.0), (1, 1.0)], 4, LevelFormat::RunLength));
    inputs.insert("x".to_string(), Tensor::Dense(DenseTensor::filled(vec![4], 1.0)));
    inputs.remove("b");
    let hoisted = hoist_conditions(rle.clone());
    let outputs_init = alloc_outputs(&hoisted, &inputs).unwrap();
    let lowered = lower(&hoisted, &inputs, &outputs_init).unwrap();
    let compiled = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
    assert!(
        compiled.disassemble().contains("VecRleLoop"),
        "run-length oracle must expand through the rle vector loop:\n{}",
        compiled.disassemble()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn intersection_matches_scalar_oracle(
        n in 2usize..40,
        pattern_a in 0usize..4,
        pattern_b in 0usize..4,
        raw_a in prop::collection::vec((0usize..64, 0.25f64..4.0), 0..32),
        raw_b in prop::collection::vec((0usize..64, 0.25f64..4.0), 0..32),
    ) {
        let a = fiber(pattern_a, &raw_a, n, 0);
        let b = fiber(pattern_b, &raw_b, n, 1);
        // s[] += a[k] * b[k]: both rank-1 compressed fibers co-iterate
        // at the root loop — the intersection vector loop, chunkable
        // (the scalar output merges through per-worker buffers).
        let prog = Stmt::loops(
            [idx("k")],
            assign(
                access("s", [] as [&str; 0]),
                mul([access("a", ["k"]), access("b", ["k"])]),
            ),
        );
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), pack_1d(&a, n, LevelFormat::Sparse));
        inputs.insert("b".to_string(), pack_1d(&b, n, LevelFormat::Sparse));
        let got = run_both(&prog, &inputs, "s");

        // Scalar oracle: the dot product over the coordinate
        // intersection, accumulated in coordinate order (the same fold
        // order both backends use, so equality is exact).
        let bmap: HashMap<usize, f64> = b.iter().copied().collect();
        let mut expected = 0.0f64;
        for &(c, va) in &a {
            if let Some(vb) = bmap.get(&c) {
                expected += va * vb;
            }
        }
        prop_assert_eq!(got.to_bits(), expected.to_bits());
    }

    #[test]
    fn rle_expansion_matches_scalar_oracle(
        n in 2usize..40,
        pattern in 0usize..4,
        raw in prop::collection::vec((0usize..64, 0.25f64..4.0), 0..32),
        xs in prop::collection::vec(0.25f64..2.0, 40),
    ) {
        let a = fiber(pattern, &raw, n, 0);
        // s[] += a[k] * x[k] over a run-length fiber: runs (including a
        // single run spanning the fiber, pattern 2) expand into strided
        // body applications.
        let prog = Stmt::loops(
            [idx("k")],
            assign(
                access("s", [] as [&str; 0]),
                mul([access("a", ["k"]), access("x", ["k"])]),
            ),
        );
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), pack_1d(&a, n, LevelFormat::RunLength));
        inputs.insert(
            "x".to_string(),
            Tensor::Dense(DenseTensor::from_vec(vec![n], xs[..n].to_vec()).unwrap()),
        );
        let got = run_both(&prog, &inputs, "s");

        let mut expected = 0.0f64;
        for &(c, v) in &a {
            expected += v * xs[c];
        }
        prop_assert_eq!(got.to_bits(), expected.to_bits());
    }
}
