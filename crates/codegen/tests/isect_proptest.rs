//! Property tests for the co-iteration vector loops (vendored proptest
//! shim): adversarial coordinate patterns — empty fibers, disjoint
//! sets, single-run RLE, duplicate-free scatter vs. dense-ish overlap —
//! drive the two-way intersection and run-length vector loops, checked
//! against a plain scalar oracle computed from the raw coordinates and
//! against the tree-walking interpreter (bit-equal values in scalar
//! lane mode, 1e-9 in the default lane mode, exact counters in both).

use std::collections::HashMap;

use proptest::prelude::*;
use systec_codegen::{CompiledKernel, ExecContext, LaneMode, Parallelism};
use systec_exec::{alloc_outputs, hoist_conditions, lower, run_lowered, Counters};
use systec_ir::build::*;
use systec_ir::Stmt;
use systec_tensor::{CooTensor, DenseTensor, LevelFormat, SparseTensor, Tensor};

/// Materializes one generated fiber pattern as sorted (coord, value)
/// pairs within `0..n`.
fn fiber(pattern: usize, raw: &[(usize, f64)], n: usize, parity: usize) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> = match pattern {
        // Empty level: the loop must run (or skip) without touching it.
        0 => Vec::new(),
        // Disjoint sets: one side even coordinates, the other odd.
        1 => raw
            .iter()
            .map(|&(c, v)| {
                let c = (c % n) & !1;
                ((c + parity).min(n - 1), v)
            })
            .collect(),
        // Single run / dense-ish overlap: a contiguous block from 0.
        2 => (0..(raw.len() % n).max(1)).map(|c| (c, 0.5 + c as f64)).collect(),
        // Duplicate-free random scatter.
        _ => raw.iter().map(|&(c, v)| (c % n, v)).collect(),
    };
    out.sort_by_key(|&(c, _)| c);
    out.dedup_by_key(|&mut (c, _)| c);
    out
}

fn pack_1d(entries: &[(usize, f64)], n: usize, format: LevelFormat) -> Tensor {
    let mut coo = CooTensor::new(vec![n]);
    for &(c, v) in entries {
        coo.set(&[c], v);
    }
    Tensor::Sparse(SparseTensor::from_coo(&coo, &[format]).unwrap())
}

/// Runs `prog` on both backends: the scalar-mode VM must agree with
/// the interpreter exactly (the bit-exact value is returned for the
/// oracle comparison), the lane-mode VM within 1e-9, and counters are
/// exact in both modes.
fn run_both(prog: &Stmt, inputs: &HashMap<String, Tensor>, out: &str) -> f64 {
    let hoisted = hoist_conditions(prog.clone());
    let outputs_init = alloc_outputs(&hoisted, inputs).unwrap();
    let lowered = lower(&hoisted, inputs, &outputs_init).unwrap();
    let compiled = CompiledKernel::compile(&lowered, inputs, &outputs_init).unwrap();

    let mut out_lane = outputs_init.clone();
    let c_lane = compiled.run(inputs, &mut out_lane).unwrap();

    let mut scalar_ctx = ExecContext::new().with_lane_mode(LaneMode::Scalar);
    let mut out_scalar = outputs_init.clone();
    let mut c_scalar = Counters::new();
    compiled
        .run_with(inputs, &mut out_scalar, &mut scalar_ctx, Parallelism::Serial, &mut c_scalar)
        .unwrap();

    let mut out_interp = outputs_init;
    let c_interp = run_lowered(&lowered, inputs, &mut out_interp).unwrap();
    assert_eq!(out_scalar[out], out_interp[out], "scalar mode disagrees on values");
    let diff = out_lane[out].max_abs_diff(&out_interp[out]).unwrap();
    assert!(diff < 1e-9, "lane mode off by {diff:e}");
    assert_eq!(c_lane, c_interp, "lane mode disagrees on counters");
    assert_eq!(c_scalar, c_interp, "scalar mode disagrees on counters");
    out_scalar[out].get(&[])
}

/// The property cases must actually drive the vectorized loops, not a
/// general-dispatch fallback.
#[test]
fn oracle_programs_take_the_vector_paths() {
    let dot = Stmt::loops(
        [idx("k")],
        assign(access("s", [] as [&str; 0]), mul([access("a", ["k"]), access("b", ["k"])])),
    );
    let mut inputs = HashMap::new();
    inputs.insert("a".to_string(), pack_1d(&[(0, 1.0), (2, 2.0)], 4, LevelFormat::Sparse));
    inputs.insert("b".to_string(), pack_1d(&[(2, 3.0)], 4, LevelFormat::Sparse));
    let hoisted = hoist_conditions(dot.clone());
    let outputs_init = alloc_outputs(&hoisted, &inputs).unwrap();
    let lowered = lower(&hoisted, &inputs, &outputs_init).unwrap();
    let compiled = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
    assert!(
        compiled.disassemble().contains("VecIsect"),
        "rank-1 dot must co-iterate through an intersection loop:\n{}",
        compiled.disassemble()
    );

    let rle = Stmt::loops(
        [idx("k")],
        assign(access("s", [] as [&str; 0]), mul([access("a", ["k"]), access("x", ["k"])])),
    );
    inputs.insert("a".to_string(), pack_1d(&[(0, 1.0), (1, 1.0)], 4, LevelFormat::RunLength));
    inputs.insert("x".to_string(), Tensor::Dense(DenseTensor::filled(vec![4], 1.0)));
    inputs.remove("b");
    let hoisted = hoist_conditions(rle.clone());
    let outputs_init = alloc_outputs(&hoisted, &inputs).unwrap();
    let lowered = lower(&hoisted, &inputs, &outputs_init).unwrap();
    let compiled = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
    assert!(
        compiled.disassemble().contains("VecRleLoop"),
        "run-length oracle must expand through the rle vector loop:\n{}",
        compiled.disassemble()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn intersection_matches_scalar_oracle(
        n in 2usize..40,
        pattern_a in 0usize..4,
        pattern_b in 0usize..4,
        raw_a in prop::collection::vec((0usize..64, 0.25f64..4.0), 0..32),
        raw_b in prop::collection::vec((0usize..64, 0.25f64..4.0), 0..32),
    ) {
        let a = fiber(pattern_a, &raw_a, n, 0);
        let b = fiber(pattern_b, &raw_b, n, 1);
        // s[] += a[k] * b[k]: both rank-1 compressed fibers co-iterate
        // at the root loop — the intersection vector loop, chunkable
        // (the scalar output merges through per-worker buffers).
        let prog = Stmt::loops(
            [idx("k")],
            assign(
                access("s", [] as [&str; 0]),
                mul([access("a", ["k"]), access("b", ["k"])]),
            ),
        );
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), pack_1d(&a, n, LevelFormat::Sparse));
        inputs.insert("b".to_string(), pack_1d(&b, n, LevelFormat::Sparse));
        let got = run_both(&prog, &inputs, "s");

        // Scalar oracle: the dot product over the coordinate
        // intersection, accumulated in coordinate order (the same fold
        // order both backends use, so equality is exact).
        let bmap: HashMap<usize, f64> = b.iter().copied().collect();
        let mut expected = 0.0f64;
        for &(c, va) in &a {
            if let Some(vb) = bmap.get(&c) {
                expected += va * vb;
            }
        }
        prop_assert_eq!(got.to_bits(), expected.to_bits());
    }

    #[test]
    fn rle_window_clamps_match_oracle(
        n in 2usize..24,
        runs in prop::collection::vec((0usize..24, 0usize..24, 1usize..25, 0usize..3), 0..12),
        full_row in 0usize..24,
        single in (0usize..24, 0usize..24),
    ) {
        // Adversarial run structures for the run-length vector loop's
        // width clamping: random runs, a run spanning an entire row
        // (so triangular windows and chunk windows always cut it), and
        // a single-element run (width-1 clamps at both edges). Every
        // case checks outputs AND the bulk counter recipes against the
        // interpreter, serial and under parallel chunk splits.
        let vals = [0.5, 1.0, 2.0];
        let mut coo = CooTensor::new(vec![n, n]);
        for &(row, start, len, vi) in &runs {
            let (row, start) = (row % n, start % n);
            for j in start..(start + len).min(n) {
                coo.set(&[row, j], vals[vi]);
            }
        }
        let fr = full_row % n;
        for j in 0..n {
            coo.set(&[fr, j], 1.0);
        }
        coo.set(&[single.0 % n, single.1 % n], 2.0);
        let a = Tensor::Sparse(
            SparseTensor::from_coo(
                &coo,
                &[LevelFormat::Dense, LevelFormat::RunLength],
            )
            .unwrap(),
        );
        let xs: Vec<f64> = (0..n).map(|j| 0.25 + j as f64 * 0.5).collect();
        let x = Tensor::Dense(DenseTensor::from_vec(vec![n], xs.clone()).unwrap());
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), a);
        inputs.insert("x".to_string(), x);

        // y[i] = sum_{j <= i} A[i,j]·x[j]: the triangular guard clamps
        // the inner run-length drive window coordinate-exactly.
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::guarded(
                le("j", "i"),
                assign(
                    access("y", ["i"]),
                    mul([access("A", ["i", "j"]), access("x", ["j"])]),
                ),
            ),
        );
        let hoisted = hoist_conditions(prog.clone());
        let outputs_init = alloc_outputs(&hoisted, &inputs).unwrap();
        let lowered = lower(&hoisted, &inputs, &outputs_init).unwrap();
        let compiled = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
        prop_assert!(
            compiled.disassemble().contains("VecRleLoop"),
            "windowed rle case must take the rle vector loop"
        );

        let mut out_interp = outputs_init.clone();
        let c_interp = run_lowered(&lowered, &inputs, &mut out_interp).unwrap();

        // Coordinate-order oracle computed from the raw coordinates:
        // matches the scalar fold order, so equality is bit-exact.
        let amap: HashMap<(usize, usize), f64> = {
            let mut m = HashMap::new();
            for i in 0..n {
                for j in 0..n {
                    let v = coo.get(&[i, j]);
                    if v != 0.0 {
                        m.insert((i, j), v);
                    }
                }
            }
            m
        };
        for i in 0..n {
            let mut expected = 0.0f64;
            for (j, &xj) in xs.iter().enumerate().take(i + 1) {
                if let Some(&v) = amap.get(&(i, j)) {
                    expected += v * xj;
                }
            }
            prop_assert_eq!(out_interp["y"].get(&[i]).to_bits(), expected.to_bits());
        }

        let mut lane_ctx = ExecContext::new();
        let mut scalar_ctx = ExecContext::new().with_lane_mode(LaneMode::Scalar);
        for threads in [1usize, 2, 3, 5] {
            for (ctx, mode) in [(&mut lane_ctx, "lanes"), (&mut scalar_ctx, "scalar")] {
                let mut out = outputs_init.clone();
                let mut counters = Counters::new();
                compiled
                    .run_with(&inputs, &mut out, ctx, Parallelism::threads(threads), &mut counters)
                    .unwrap();
                assert_eq!(
                    counters, c_interp,
                    "t={threads} {mode}: clamped bulk counters must match exactly"
                );
                let diff = out["y"].max_abs_diff(&out_interp["y"]).unwrap();
                prop_assert!(diff < 1e-9, "t={threads} {mode}: outputs off by {diff:e}");
                if threads == 1 && mode == "scalar" {
                    assert_eq!(out["y"], out_interp["y"], "serial scalar mode must clamp bit-exactly");
                }
            }
        }
    }

    #[test]
    fn rle_expansion_matches_scalar_oracle(
        n in 2usize..40,
        pattern in 0usize..4,
        raw in prop::collection::vec((0usize..64, 0.25f64..4.0), 0..32),
        xs in prop::collection::vec(0.25f64..2.0, 40),
    ) {
        let a = fiber(pattern, &raw, n, 0);
        // s[] += a[k] * x[k] over a run-length fiber: runs (including a
        // single run spanning the fiber, pattern 2) expand into strided
        // body applications.
        let prog = Stmt::loops(
            [idx("k")],
            assign(
                access("s", [] as [&str; 0]),
                mul([access("a", ["k"]), access("x", ["k"])]),
            ),
        );
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), pack_1d(&a, n, LevelFormat::RunLength));
        inputs.insert(
            "x".to_string(),
            Tensor::Dense(DenseTensor::from_vec(vec![n], xs[..n].to_vec()).unwrap()),
        );
        let got = run_both(&prog, &inputs, "s");

        let mut expected = 0.0f64;
        for &(c, v) in &a {
            expected += v * xs[c];
        }
        prop_assert_eq!(got.to_bits(), expected.to_bits());
    }
}
