//! Regression guard for the ROADMAP "reusable VM execution context"
//! item: once an [`ExecContext`] (and a reused `Counters`) is warm, the
//! serial steady-state execution path performs **zero** heap
//! allocations — register files, scratch, binding tables and counter
//! assembly all reuse caller-owned or stack storage. A counting global
//! allocator makes any regression an immediate test failure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use systec_codegen::{CompiledKernel, ExecContext, Parallelism};
use systec_exec::{alloc_outputs, hoist_conditions, lower, Counters};
use systec_ir::build::*;
use systec_ir::{AssignOp, Einsum, Stmt};
use systec_tensor::{CooTensor, DenseTensor, LevelFormat, SparseTensor, Tensor};

/// Counts every allocation (alloc, alloc_zeroed, realloc) forwarded to
/// the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

fn compile(
    prog: &Stmt,
    inputs: &HashMap<String, Tensor>,
) -> (CompiledKernel, HashMap<String, DenseTensor>) {
    let hoisted = hoist_conditions(prog.clone());
    let outputs_init = alloc_outputs(&hoisted, inputs).unwrap();
    let lowered = lower(&hoisted, inputs, &outputs_init).unwrap();
    let kernel = CompiledKernel::compile(&lowered, inputs, &outputs_init).unwrap();
    (kernel, outputs_init)
}

fn csr(n: usize, entries: &[(usize, usize, f64)]) -> Tensor {
    let mut coo = CooTensor::new(vec![n, n]);
    for &(i, j, v) in entries {
        coo.set(&[i, j], v);
    }
    Tensor::Sparse(
        SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::Sparse]).unwrap(),
    )
}

/// Warm the context, then assert the steady state allocates nothing.
fn assert_steady_state_alloc_free(
    kernel: &CompiledKernel,
    inputs: &HashMap<String, Tensor>,
    outputs: &mut HashMap<String, DenseTensor>,
    label: &str,
) {
    let mut ctx = ExecContext::new();
    let mut counters = Counters::new();
    for _ in 0..3 {
        kernel.run_with(inputs, outputs, &mut ctx, Parallelism::Serial, &mut counters).unwrap();
    }
    let before = allocations();
    for _ in 0..10 {
        kernel.run_with(inputs, outputs, &mut ctx, Parallelism::Serial, &mut counters).unwrap();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{label}: steady-state serial execution must not allocate (saw {} allocations over 10 runs)",
        after - before
    );
}

#[test]
fn spmv_steady_state_is_allocation_free() {
    // Sparse driver walk + vectorized innermost loop + dense operand +
    // owned output: the common hot-path shapes.
    let einsum = Einsum::new(
        access("y", ["i"]),
        AssignOp::Add,
        mul([access("A", ["i", "j"]), access("x", ["j"])]),
        [idx("i"), idx("j")],
    );
    let mut inputs = HashMap::new();
    inputs.insert("A".to_string(), csr(6, &[(0, 1, 2.0), (1, 0, 3.0), (2, 5, 4.0), (4, 4, 1.0)]));
    inputs.insert(
        "x".to_string(),
        Tensor::Dense(DenseTensor::from_vec(vec![6], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()),
    );
    let (kernel, outputs_init) = compile(&einsum.naive_program(), &inputs);
    let mut outputs = outputs_init;
    assert_steady_state_alloc_free(&kernel, &inputs, &mut outputs, "spmv");
}

#[test]
fn min_plus_with_guards_steady_state_is_allocation_free() {
    // Miss bookkeeping (ClearMiss/JumpIfMiss), residual guards, scalar
    // reduction — the general (non-vectorized) dispatch path.
    let prog = Stmt::loops(
        [idx("i"), idx("j")],
        Stmt::guarded(
            ne("i", "j"),
            assign_op(
                access("y", ["i"]),
                AssignOp::Min,
                add([access("A", ["i", "j"]), access("x", ["j"])]),
            ),
        ),
    );
    let mut inputs = HashMap::new();
    inputs.insert("A".to_string(), csr(5, &[(0, 1, 1.0), (2, 3, 2.0), (4, 0, 3.0)]));
    inputs.insert(
        "x".to_string(),
        Tensor::Dense(DenseTensor::from_vec(vec![5], vec![0.5, 1.5, 2.5, 3.5, 4.5]).unwrap()),
    );
    let (kernel, outputs_init) = compile(&prog, &inputs);
    let mut outputs = outputs_init;
    assert_steady_state_alloc_free(&kernel, &inputs, &mut outputs, "min-plus");
}

#[test]
fn context_growth_settles_across_plans() {
    // Interleaving two plans of different sizes through one context
    // still reaches a steady state: buffers grow to the larger plan
    // once, then both plans run allocation-free.
    let spmv = Einsum::new(
        access("y", ["i"]),
        AssignOp::Add,
        mul([access("A", ["i", "j"]), access("x", ["j"])]),
        [idx("i"), idx("j")],
    );
    let mut inputs_small = HashMap::new();
    inputs_small.insert("A".to_string(), csr(4, &[(0, 1, 2.0), (3, 2, 1.0)]));
    inputs_small.insert(
        "x".to_string(),
        Tensor::Dense(DenseTensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap()),
    );
    let mut inputs_big = HashMap::new();
    inputs_big
        .insert("A".to_string(), csr(9, &[(0, 8, 2.0), (5, 2, 1.0), (7, 7, 3.0), (8, 0, 4.0)]));
    inputs_big.insert("x".to_string(), Tensor::Dense(DenseTensor::filled(vec![9], 1.5)));
    let (k_small, out_small) = compile(&spmv.naive_program(), &inputs_small);
    let (k_big, out_big) = compile(&spmv.naive_program(), &inputs_big);

    let mut ctx = ExecContext::new();
    let mut counters = Counters::new();
    let mut outputs_small = out_small;
    let mut outputs_big = out_big;
    for _ in 0..3 {
        k_small
            .run_with(
                &inputs_small,
                &mut outputs_small,
                &mut ctx,
                Parallelism::Serial,
                &mut counters,
            )
            .unwrap();
        k_big
            .run_with(&inputs_big, &mut outputs_big, &mut ctx, Parallelism::Serial, &mut counters)
            .unwrap();
    }
    let before = allocations();
    for _ in 0..6 {
        k_small
            .run_with(
                &inputs_small,
                &mut outputs_small,
                &mut ctx,
                Parallelism::Serial,
                &mut counters,
            )
            .unwrap();
        k_big
            .run_with(&inputs_big, &mut outputs_big, &mut ctx, Parallelism::Serial, &mut counters)
            .unwrap();
    }
    assert_eq!(allocations() - before, 0, "interleaved steady state must not allocate");
}
