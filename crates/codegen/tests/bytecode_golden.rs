//! Golden-bytecode snapshot tests: the compiled plans of every paper
//! kernel (plus the naive ssymv baseline) disassemble to a stable text
//! form that is diffed against checked-in `.golden` files. Any
//! instruction-selection change — a new vector-loop kind firing, a
//! fusion rule widening, a register-allocation tweak — shows up as a
//! reviewable diff instead of an invisible behavior change.
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! SYSTEC_BLESS=1 cargo test -p systec-codegen --test bytecode_golden
//! ```
//!
//! Plans depend only on the einsum, symmetry declarations, and input
//! formats/dims — never on values — so the fixed shapes below pin the
//! snapshots completely.

use std::collections::HashMap;
use std::path::PathBuf;

use systec_codegen::CompiledKernel;
use systec_core::Compiler;
use systec_exec::{alloc_outputs, hoist_conditions, lower, prepare_variants};
use systec_ir::Stmt;
use systec_kernels::defs::{self, InputData, KernelDef};
use systec_tensor::{CooTensor, DenseTensor, Tensor};

/// Extent of every sparse-chain index in the snapshot inputs.
const N: usize = 8;
/// Extent of dense-only indices (MTTKRP's `j`, TTM's `i`).
const RANK: usize = 4;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

/// Deterministic COO data covering every symmetry orbit the packers
/// care about: a diagonal entry, an off-diagonal orbit, and a run of
/// consecutive leaf coordinates (values are irrelevant to the plan).
fn fixed_coo(rank: usize) -> CooTensor {
    let mut coo = CooTensor::new(vec![N; rank]);
    coo.set(&vec![1; rank], 1.0);
    let mut coords: Vec<usize> = (0..rank).collect();
    coo.set(&coords, 2.0);
    coords.reverse();
    coo.set(&coords, 2.0);
    let mut run = vec![2; rank];
    for j in 3..6 {
        run[rank - 1] = j;
        coo.set(&run, 3.0);
    }
    coo
}

/// Builds the kernel's fixed-shape inputs (symmetric data for declared
/// symmetries, so packing succeeds; dense factor matrices span
/// (chain index, dense index)).
fn fixed_inputs(def: &KernelDef) -> HashMap<String, Tensor> {
    let mut inputs: HashMap<String, Tensor> = HashMap::new();
    for access in def.einsum.rhs.accesses() {
        let name = access.tensor.name.clone();
        if inputs.contains_key(&name) {
            continue;
        }
        let rank = access.rank();
        let value: InputData = if let Some(partition) = def.symmetry.partition(&name) {
            let base = fixed_coo(rank);
            let mut sym = CooTensor::new(vec![N; rank]);
            for (coords, v) in base.entries() {
                for perm in partition.permutations() {
                    let permuted: Vec<usize> = perm.iter().map(|&p| coords[p]).collect();
                    sym.set(&permuted, v);
                }
            }
            sym.into()
        } else if def.formats[&name] != defs::InputFormat::Dense {
            // SSYRK's non-symmetric sparse A.
            fixed_coo(rank).into()
        } else if rank == 1 {
            DenseTensor::filled(vec![N], 1.0).into()
        } else {
            DenseTensor::filled(vec![N, RANK], 1.0).into()
        };
        inputs.extend(def.inputs([(name.as_str(), value)]).expect("fixed data packs"));
    }
    inputs
}

/// Compiles `main` (+ optional replication) against the inputs and
/// renders the full snapshot text.
fn snapshot(main: Stmt, replication: Option<Stmt>, inputs: &HashMap<String, Tensor>) -> String {
    let main = hoist_conditions(main);
    let mut all_inputs = inputs.clone();
    all_inputs.extend(prepare_variants(&main, inputs).expect("variants"));
    let outputs_init = alloc_outputs(&main, &all_inputs).expect("outputs");
    let compiled = |stmt: &Stmt| -> String {
        let lowered = lower(stmt, &all_inputs, &outputs_init).expect("lowers");
        CompiledKernel::compile(&lowered, &all_inputs, &outputs_init)
            .expect("compiles")
            .disassemble()
    };
    let mut text = String::from("== main ==\n");
    text.push_str(&compiled(&main));
    if let Some(rep) = replication {
        let rep = hoist_conditions(rep);
        text.push_str("== replication ==\n");
        text.push_str(&compiled(&rep));
    }
    text
}

/// Diffs (or, under `SYSTEC_BLESS=1`, rewrites) one snapshot.
fn check(name: &str, text: &str) -> Result<(), String> {
    let path = golden_dir().join(format!("{name}.golden"));
    if std::env::var_os("SYSTEC_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, text).expect("write golden");
        return Ok(());
    }
    let expected = std::fs::read_to_string(&path).map_err(|e| {
        format!("{name}: missing golden file {path:?} ({e}); bless with SYSTEC_BLESS=1")
    })?;
    if expected == text {
        return Ok(());
    }
    let diff: Vec<String> = expected
        .lines()
        .zip(text.lines())
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .take(8)
        .map(|(k, (a, b))| format!("  line {}:\n  - {a}\n  + {b}", k + 1))
        .collect();
    Err(format!(
        "{name}: compiled bytecode diverged from {path:?} \
         ({} vs {} lines). If the change is intentional, regenerate with \
         SYSTEC_BLESS=1 and review the diff.\n{}",
        expected.lines().count(),
        text.lines().count(),
        diff.join("\n")
    ))
}

#[test]
fn paper_kernel_bytecode_matches_goldens() {
    let mut failures = Vec::new();
    for def in defs::all() {
        let inputs = fixed_inputs(&def);
        let kernel = Compiler::new()
            .compile(&def.einsum, &def.symmetry)
            .unwrap_or_else(|e| panic!("{} compiles: {e}", def.name));
        let text = snapshot(kernel.main, kernel.replication, &inputs);
        if let Err(e) = check(def.name, &text) {
            failures.push(e);
        }
    }
    // The naive (symmetry-oblivious) ssymv baseline rides along: it pins
    // the plain concordant-driver selection with no symmetry passes.
    let def = defs::ssymv();
    let inputs = fixed_inputs(&def);
    let naive = Compiler::new().naive(&def.einsum);
    if let Err(e) = check("ssymv_naive", &snapshot(naive, None, &inputs)) {
        failures.push(e);
    }
    assert!(failures.is_empty(), "stale golden files:\n{}", failures.join("\n"));
}

/// The snapshots themselves assert the headline selection facts, so a
/// regression that *also* blesses new goldens still has to get past
/// review with these names in the diff.
#[test]
fn ssyrk_probe_loop_vectorizes_to_intersection() {
    let def = defs::ssyrk();
    let inputs = fixed_inputs(&def);
    let kernel = Compiler::new().compile(&def.einsum, &def.symmetry).unwrap();
    let text = snapshot(kernel.main, None, &inputs);
    assert!(
        text.contains("VecIsectLoop") && text.contains("kind: Dot"),
        "ssyrk's probed k-loop must select the intersection loop with a fused dot body:\n{text}"
    );
    assert!(
        !text.contains("SparseLoopHead"),
        "no general compressed walk should survive in ssyrk's main program:\n{text}"
    );
}

/// Fused-body selection fires on the hot loops of the paper suite: the
/// goldens carry the full `Fused` forms, and this pins the headline
/// facts by name so a regression can't hide behind a bless.
#[test]
fn fused_bodies_selected_across_paper_kernels() {
    let mut fused_kernels = 0usize;
    for def in defs::all() {
        let inputs = fixed_inputs(&def);
        let kernel = Compiler::new().compile(&def.einsum, &def.symmetry).unwrap();
        let text = snapshot(kernel.main, kernel.replication, &inputs);
        if text.contains("fused: Some") {
            fused_kernels += 1;
        }
    }
    assert!(
        fused_kernels >= 5,
        "fused bodies must be selected on at least 5 of the paper kernels, got {fused_kernels}"
    );
}
