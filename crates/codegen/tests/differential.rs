//! Differential tests of the compiled backend: on randomized einsums
//! over randomized storage formats (CSR, CSF, run-length, all-sparse,
//! all-dense), the bytecode VM must agree with the tree-walking
//! interpreter and with brute-force reference evaluation to 1e-9, and
//! the work counters must match the interpreter exactly. The VM runs
//! in both lane modes: the default explicit-lane runners reassociate
//! register-held folds (so values agree within 1e-9), while scalar
//! mode keeps the original bit-for-bit guarantee against the
//! interpreter. Counters are exact in both modes.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use systec_codegen::{CompiledKernel, ExecContext, LaneMode, Parallelism};
use systec_core::{Compiler, SymmetrySpec};
use systec_exec::reference::reference_einsum;
use systec_exec::{
    alloc_outputs, hoist_conditions, lower, prepare_variants, run_lowered, Counters,
};
use systec_ir::build::*;
use systec_ir::{AssignOp, Einsum, Stmt};
use systec_tensor::{CooTensor, DenseTensor, LevelFormat, SparseTensor, Tensor};

const TOL: f64 = 1e-9;

/// Runs a (hoisted) program on both backends: the interpreter anchors
/// the expectation; the scalar-mode VM must match it bit-for-bit; the
/// lane-mode VM (the default) must match within [`TOL`]. Counters are
/// exact in both modes. Returns the lane-mode outputs and counters.
fn run_both(
    prog: &Stmt,
    inputs: &HashMap<String, Tensor>,
    label: &str,
) -> (HashMap<String, DenseTensor>, Counters) {
    let hoisted = hoist_conditions(prog.clone());
    let outputs_init = alloc_outputs(&hoisted, inputs).expect(label);
    let lowered = lower(&hoisted, inputs, &outputs_init).expect(label);
    let compiled = CompiledKernel::compile(&lowered, inputs, &outputs_init).expect(label);

    let mut out_vm = outputs_init.clone();
    let c_vm = compiled.run(inputs, &mut out_vm).expect(label);

    let mut scalar_ctx = ExecContext::new().with_lane_mode(LaneMode::Scalar);
    let mut out_scalar = outputs_init.clone();
    let mut c_scalar = Counters::new();
    compiled
        .run_with(inputs, &mut out_scalar, &mut scalar_ctx, Parallelism::Serial, &mut c_scalar)
        .expect(label);

    let mut out_interp = outputs_init;
    let c_interp = run_lowered(&lowered, inputs, &mut out_interp).expect(label);

    assert_eq!(out_vm.len(), out_interp.len(), "{label}: output sets differ");
    for (name, t) in &out_interp {
        assert_eq!(&out_scalar[name], t, "{label}: scalar-mode output {name} differs bit-for-bit");
        let diff = out_vm[name].max_abs_diff(t).expect(label);
        assert!(diff < TOL, "{label}: lane-mode output {name} off by {diff:e}");
    }
    assert_eq!(c_vm, c_interp, "{label}: lane-mode counter parity violated");
    assert_eq!(c_scalar, c_interp, "{label}: scalar-mode counter parity violated");
    (out_vm, c_vm)
}

/// Random sparse square matrix in the given format; values are drawn
/// from a small set so run-length levels actually form runs.
fn random_matrix(n: usize, nnz: usize, formats: &[LevelFormat], r: &mut StdRng) -> Tensor {
    let rank = formats.len();
    let mut coo = CooTensor::new(vec![n; rank]);
    for _ in 0..nnz {
        let coords: Vec<usize> = (0..rank).map(|_| r.gen_range(0..n)).collect();
        // Quantized values create mergeable runs for RunLength levels.
        let v = [0.5, 1.0, 2.0][r.gen_range(0usize..3)];
        coo.set(&coords, v);
        // Half the time, extend a run along the last mode.
        if r.gen_bool(0.5) {
            let mut next = coords.clone();
            if next[rank - 1] + 1 < n {
                next[rank - 1] += 1;
                coo.set(&next, v);
            }
        }
    }
    Tensor::Sparse(SparseTensor::from_coo(&coo, formats).unwrap())
}

fn random_dense_vec(n: usize, r: &mut StdRng) -> Tensor {
    Tensor::Dense(
        DenseTensor::from_vec(vec![n], (0..n).map(|_| r.gen_range(0.1..2.0)).collect()).unwrap(),
    )
}

const MATRIX_FORMATS: &[&[LevelFormat]] = &[
    // CSR
    &[LevelFormat::Dense, LevelFormat::Sparse],
    // fully compressed (hypersparse)
    &[LevelFormat::Sparse, LevelFormat::Sparse],
    // run-length leaf under a dense root
    &[LevelFormat::Dense, LevelFormat::RunLength],
    // run-length leaf under a compressed root
    &[LevelFormat::Sparse, LevelFormat::RunLength],
    // fully dense storage of a sparse pattern
    &[LevelFormat::Dense, LevelFormat::Dense],
];

const CSF_FORMATS: &[&[LevelFormat]] = &[
    // 3-d CSF
    &[LevelFormat::Dense, LevelFormat::Sparse, LevelFormat::Sparse],
    // all-sparse
    &[LevelFormat::Sparse, LevelFormat::Sparse, LevelFormat::Sparse],
    // run-length leaf
    &[LevelFormat::Dense, LevelFormat::Sparse, LevelFormat::RunLength],
];

#[test]
fn spmv_matches_reference_across_formats() {
    for (k, formats) in MATRIX_FORMATS.iter().enumerate() {
        for seed in 0..8u64 {
            let mut r = StdRng::seed_from_u64(1000 + 100 * k as u64 + seed);
            let n = r.gen_range(2usize..8);
            let einsum = Einsum::new(
                access("y", ["i"]),
                AssignOp::Add,
                mul([access("A", ["i", "j"]), access("x", ["j"])]),
                [idx("i"), idx("j")],
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, n + 2, formats, &mut r));
            inputs.insert("x".to_string(), random_dense_vec(n, &mut r));
            let label = format!("spmv formats={formats:?} seed={seed}");
            let (out, _) = run_both(&einsum.naive_program(), &inputs, &label);
            let expected = reference_einsum(&einsum, &inputs).unwrap();
            assert!(out["y"].max_abs_diff(&expected).unwrap() < TOL, "{label}");
        }
    }
}

#[test]
fn discordant_loop_order_matches_reference() {
    // Loop order (j, i) over row-major formats forces random access.
    for (k, formats) in MATRIX_FORMATS.iter().enumerate() {
        let mut r = StdRng::seed_from_u64(2000 + k as u64);
        let n = 6;
        let einsum = Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("j"), idx("i")],
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), random_matrix(n, 9, formats, &mut r));
        inputs.insert("x".to_string(), random_dense_vec(n, &mut r));
        let label = format!("discordant formats={formats:?}");
        let (out, _) = run_both(&einsum.naive_program(), &inputs, &label);
        let expected = reference_einsum(&einsum, &inputs).unwrap();
        assert!(out["y"].max_abs_diff(&expected).unwrap() < TOL, "{label}");
    }
}

#[test]
fn min_plus_semiring_matches_reference() {
    for (k, formats) in MATRIX_FORMATS.iter().enumerate() {
        let mut r = StdRng::seed_from_u64(3000 + k as u64);
        let n = 7;
        let einsum = Einsum::new(
            access("y", ["i"]),
            AssignOp::Min,
            add([access("A", ["i", "j"]), access("d", ["j"])]),
            [idx("i"), idx("j")],
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), random_matrix(n, 10, formats, &mut r));
        inputs.insert("d".to_string(), random_dense_vec(n, &mut r));
        let label = format!("min-plus formats={formats:?}");
        let (out, _) = run_both(&einsum.naive_program(), &inputs, &label);
        let expected = reference_einsum(&einsum, &inputs).unwrap();
        assert!(out["y"].max_abs_diff(&expected).unwrap() < TOL, "{label}");
    }
}

#[test]
fn csf3_contraction_matches_reference() {
    for (k, formats) in CSF_FORMATS.iter().enumerate() {
        for seed in 0..4u64 {
            let mut r = StdRng::seed_from_u64(4000 + 10 * k as u64 + seed);
            let n = r.gen_range(3usize..6);
            let einsum = Einsum::new(
                access("C", ["i", "j"]),
                AssignOp::Add,
                mul([
                    access("A", ["i", "k", "l"]),
                    access("B", ["k", "j"]),
                    access("B", ["l", "j"]),
                ]),
                [idx("i"), idx("k"), idx("l"), idx("j")],
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, 2 * n, formats, &mut r));
            let b = DenseTensor::from_vec(
                vec![n, 3],
                (0..n * 3).map(|_| r.gen_range(0.1..1.5)).collect(),
            )
            .unwrap();
            inputs.insert("B".to_string(), Tensor::Dense(b));
            let label = format!("csf3 formats={formats:?} seed={seed}");
            let (out, _) = run_both(&einsum.naive_program(), &inputs, &label);
            let expected = reference_einsum(&einsum, &inputs).unwrap();
            assert!(out["C"].max_abs_diff(&expected).unwrap() < TOL, "{label}");
        }
    }
}

#[test]
fn guarded_programs_agree_between_backends() {
    // Triangle bounds, inequality residuals, and disjunctive guards —
    // the shapes the symmetrizer emits.
    let guards: Vec<(&str, Stmt)> = vec![
        (
            "le-bound",
            Stmt::loops(
                [idx("i"), idx("j")],
                Stmt::guarded(
                    le("j", "i"),
                    assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
                ),
            ),
        ),
        (
            "ne-residual",
            Stmt::loops(
                [idx("j"), idx("i")],
                Stmt::guarded(
                    ne("i", "j"),
                    assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
                ),
            ),
        ),
        (
            "or-guard",
            Stmt::loops(
                [idx("j"), idx("i")],
                Stmt::guarded(
                    or([eq("i", "j"), gt("i", "j")]),
                    assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
                ),
            ),
        ),
        (
            "and-pair",
            Stmt::loops(
                [idx("i"), idx("j")],
                Stmt::guarded(
                    and([le("i", "j"), ne("i", "j")]),
                    assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
                ),
            ),
        ),
    ];
    for (name, prog) in &guards {
        for (k, formats) in MATRIX_FORMATS.iter().enumerate() {
            let mut r = StdRng::seed_from_u64(5000 + k as u64);
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(6, 10, formats, &mut r));
            run_both(prog, &inputs, &format!("guard {name} formats={formats:?}"));
        }
    }
}

#[test]
fn symmetric_compiled_kernels_agree_on_both_backends() {
    // Full SySTeC pipeline output (lets, workspaces, diagonal splits,
    // replication) through both backends, against the reference.
    let cases: Vec<(&str, Einsum, SymmetrySpec)> = vec![
        (
            "ssymv",
            Einsum::new(
                access("y", ["i"]),
                AssignOp::Add,
                mul([access("A", ["i", "j"]), access("x", ["j"])]),
                [idx("i"), idx("j")],
            ),
            SymmetrySpec::new().with_full("A", 2),
        ),
        (
            "syprd",
            Einsum::new(
                access("s", [] as [&str; 0]),
                AssignOp::Add,
                mul([access("x", ["i"]), access("A", ["i", "j"]), access("x", ["j"])]),
                [idx("i"), idx("j")],
            ),
            SymmetrySpec::new().with_full("A", 2),
        ),
        (
            "ssyrk",
            Einsum::new(
                access("C", ["i", "j"]),
                AssignOp::Add,
                mul([access("A", ["i", "k"]), access("A", ["j", "k"])]),
                [idx("i"), idx("j"), idx("k")],
            ),
            SymmetrySpec::new(),
        ),
    ];
    for (name, einsum, spec) in &cases {
        for (fk, formats) in MATRIX_FORMATS.iter().enumerate() {
            let seed = fk as u64 % 3;
            let mut r = StdRng::seed_from_u64(6000 + seed);
            let n = 8 + 2 * seed as usize;
            // Symmetrize data for declared symmetries; quantized values
            // plus run extension so RunLength leaves form real runs.
            let mut coo = CooTensor::new(vec![n, n]);
            for _ in 0..(2 * n) {
                let (i, j) = (r.gen_range(0..n), r.gen_range(0..n));
                let v = [0.25, 0.5, 0.75][r.gen_range(0usize..3)];
                let mut set_sym = |i: usize, j: usize| {
                    if spec.is_empty() {
                        coo.set(&[i, j], v);
                    } else {
                        coo.set(&[i, j], v);
                        coo.set(&[j, i], v);
                    }
                };
                set_sym(i, j);
                if r.gen_bool(0.5) && j + 1 < n {
                    set_sym(i, j + 1);
                }
            }
            let mut inputs = HashMap::new();
            inputs.insert(
                "A".to_string(),
                Tensor::Sparse(SparseTensor::from_coo(&coo, formats).unwrap()),
            );
            if einsum.rhs.accesses().iter().any(|a| a.tensor.name == "x") {
                inputs.insert("x".to_string(), random_dense_vec(n, &mut r));
            }
            let kernel = Compiler::new().compile(einsum, spec).expect("compiles");
            let label = format!("systec {name} formats={formats:?} seed={seed}");

            // Main + replication, both backends, against the reference.
            let main = hoist_conditions(kernel.main.clone());
            let mut all_inputs = inputs.clone();
            all_inputs.extend(prepare_variants(&main, &inputs).unwrap());
            let (mut out_vm, _) = run_both(&main, &all_inputs, &label);
            if let Some(rep) = &kernel.replication {
                let rep = hoist_conditions(rep.clone());
                let lowered = lower(&rep, &all_inputs, &out_vm).unwrap();
                let compiled = CompiledKernel::compile(&lowered, &all_inputs, &out_vm).unwrap();
                let mut out_interp = out_vm.clone();
                let c_vm = compiled.run(&all_inputs, &mut out_vm).unwrap();
                let c_interp = run_lowered(&lowered, &all_inputs, &mut out_interp).unwrap();
                assert_eq!(c_vm, c_interp, "{label}: replication counters");
                let out_name = einsum.output.tensor.display_name();
                assert_eq!(out_vm[&out_name], out_interp[&out_name], "{label}: replication");
            }
            let expected = reference_einsum(einsum, &inputs).unwrap();
            let out_name = einsum.output.tensor.display_name();
            assert!(
                out_vm[&out_name].max_abs_diff(&expected).unwrap() < TOL,
                "{label}: differs from reference"
            );
        }
    }
}

#[test]
fn sparse_sparse_intersection_matches_reference() {
    // `C[i, j] += A[i, k] * B[j, k]` — the SSYRK probe shape over two
    // distinct tensors. Compressed×compressed leaf pairs compile to the
    // two-way intersection vector loop; every other ladder pair keeps
    // the general probed walk. Both must match the interpreter with
    // exact counters.
    for (ka, fa) in MATRIX_FORMATS.iter().enumerate() {
        for (kb, fb) in MATRIX_FORMATS.iter().enumerate() {
            for seed in 0..2u64 {
                let mut r = StdRng::seed_from_u64(8000 + 100 * ka as u64 + 10 * kb as u64 + seed);
                let n = r.gen_range(3usize..9);
                let einsum = Einsum::new(
                    access("C", ["i", "j"]),
                    AssignOp::Add,
                    mul([access("A", ["i", "k"]), access("B", ["j", "k"])]),
                    [idx("i"), idx("j"), idx("k")],
                );
                let mut inputs = HashMap::new();
                inputs.insert("A".to_string(), random_matrix(n, n + 3, fa, &mut r));
                inputs.insert("B".to_string(), random_matrix(n, n + 3, fb, &mut r));
                let label = format!("isect a={fa:?} b={fb:?} seed={seed}");
                let (out, _) = run_both(&einsum.naive_program(), &inputs, &label);
                let expected = reference_einsum(&einsum, &inputs).unwrap();
                assert!(out["C"].max_abs_diff(&expected).unwrap() < TOL, "{label}");
            }
        }
    }
}

#[test]
fn self_intersection_with_bounds_matches_reference() {
    // The literal SSYRK shape — both sides of the intersection walk the
    // same tensor, under a triangular bound on the middle loop.
    for (k, formats) in MATRIX_FORMATS.iter().enumerate() {
        for seed in 0..3u64 {
            let mut r = StdRng::seed_from_u64(8300 + 10 * k as u64 + seed);
            let n = r.gen_range(4usize..10);
            let prog = Stmt::loops(
                [idx("i"), idx("j"), idx("k")],
                Stmt::guarded(
                    le("i", "j"),
                    assign(
                        access("C", ["i", "j"]),
                        mul([access("A", ["i", "k"]), access("A", ["j", "k"])]),
                    ),
                ),
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, 2 * n, formats, &mut r));
            run_both(&prog, &inputs, &format!("ssyrk-tri formats={formats:?} seed={seed}"));
        }
    }
}

#[test]
fn random_access_gathers_match_reference() {
    // Forces `ReadSparseRandom` operands through vector loops: (a) a
    // leaf-varying gather in a dense innermost loop (invariant prefix +
    // gallop cursor), (b) a root-varying gather riding a compressed
    // driver (full per-coordinate search, miss-checked store).
    for (k, formats) in CSF_FORMATS.iter().enumerate() {
        for seed in 0..3u64 {
            let mut r = StdRng::seed_from_u64(8600 + 10 * k as u64 + seed);
            let n = r.gen_range(3usize..7);
            // (a) s[] += A[k, i, j] * x[j], loops i, k, j: mode 0 binds
            // after mode 1 (discordant), the innermost j is A's leaf.
            let leaf_gather = Einsum::new(
                access("s", [] as [&str; 0]),
                AssignOp::Add,
                mul([access("A", ["k", "i", "j"]), access("x", ["j"])]),
                [idx("i"), idx("k"), idx("j")],
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, 2 * n, formats, &mut r));
            inputs.insert("x".to_string(), random_dense_vec(n, &mut r));
            let label = format!("leaf-gather formats={formats:?} seed={seed}");
            let (out, _) = run_both(&leaf_gather.naive_program(), &inputs, &label);
            let expected = reference_einsum(&leaf_gather, &inputs).unwrap();
            assert!(out["s"].max_abs_diff(&expected).unwrap() < TOL, "{label}");
        }
    }
    for (k, formats) in MATRIX_FORMATS.iter().enumerate() {
        for seed in 0..3u64 {
            let mut r = StdRng::seed_from_u64(8700 + 10 * k as u64 + seed);
            let n = r.gen_range(3usize..8);
            // (b) y[i] += A[i, j] * B[j, i]: A drives the inner loop, B
            // is a discordant random read whose misses annihilate.
            let driven_gather = Einsum::new(
                access("y", ["i"]),
                AssignOp::Add,
                mul([access("A", ["i", "j"]), access("B", ["j", "i"])]),
                [idx("i"), idx("j")],
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, n + 3, formats, &mut r));
            inputs.insert("B".to_string(), random_matrix(n, n + 3, MATRIX_FORMATS[0], &mut r));
            let label = format!("driven-gather formats={formats:?} seed={seed}");
            let (out, _) = run_both(&driven_gather.naive_program(), &inputs, &label);
            let expected = reference_einsum(&driven_gather, &inputs).unwrap();
            assert!(out["y"].max_abs_diff(&expected).unwrap() < TOL, "{label}");
        }
    }
}

#[test]
fn windowed_rle_drivers_match_reference() {
    // Run-length drivers at the innermost level under triangular
    // bounds: runs must clamp to the loop window coordinate-exactly.
    let rle_formats: &[&[LevelFormat]] = &[
        &[LevelFormat::Dense, LevelFormat::RunLength],
        &[LevelFormat::Sparse, LevelFormat::RunLength],
    ];
    for (k, formats) in rle_formats.iter().enumerate() {
        for seed in 0..4u64 {
            let mut r = StdRng::seed_from_u64(8900 + 10 * k as u64 + seed);
            let n = r.gen_range(4usize..10);
            let prog = Stmt::loops(
                [idx("i"), idx("j")],
                Stmt::guarded(
                    le("j", "i"),
                    assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
                ),
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, 2 * n, formats, &mut r));
            inputs.insert("x".to_string(), random_dense_vec(n, &mut r));
            run_both(&prog, &inputs, &format!("rle-window formats={formats:?} seed={seed}"));
        }
    }
}

#[test]
fn counters_match_across_many_random_cases() {
    // A broad, purely randomized sweep focused on counter parity.
    for seed in 0..40u64 {
        let mut r = StdRng::seed_from_u64(7000 + seed);
        let n = r.gen_range(2usize..7);
        let formats = MATRIX_FORMATS[r.gen_range(0..MATRIX_FORMATS.len())];
        let concordant = r.gen_bool(0.5);
        let order = if concordant { [idx("i"), idx("j")] } else { [idx("j"), idx("i")] };
        let op = if r.gen_bool(0.5) { AssignOp::Add } else { AssignOp::Min };
        let rhs = if op == AssignOp::Add {
            mul([access("A", ["i", "j"]), access("x", ["j"])])
        } else {
            add([access("A", ["i", "j"]), access("x", ["j"])])
        };
        let einsum = Einsum::new(access("y", ["i"]), op, rhs, order);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), random_matrix(n, n + 3, formats, &mut r));
        inputs.insert("x".to_string(), random_dense_vec(n, &mut r));
        run_both(
            &einsum.naive_program(),
            &inputs,
            &format!("sweep seed={seed} formats={formats:?} op={op:?} concordant={concordant}"),
        );
    }
}
