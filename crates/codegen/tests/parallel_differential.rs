//! Differential tests of row-parallel execution: on randomized einsums
//! over randomized storage formats and thread counts (1, 2, 4, 7 — plus
//! `SYSTEC_TEST_THREADS`, which CI sets to exercise the parallel paths
//! on every push), the parallel VM must agree with the serial-compiled
//! VM, the tree-walking interpreter, and brute-force reference
//! evaluation within 1e-9, with **exact** merged-counter parity. A
//! separate determinism test pins bit-identical outputs and counters
//! across repeated parallel runs.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use systec_codegen::{CompiledKernel, ExecContext, LaneMode, Parallelism};
use systec_core::{Compiler, SymmetrySpec};
use systec_exec::reference::reference_einsum;
use systec_exec::{
    alloc_outputs, hoist_conditions, lower, prepare_variants, run_lowered, Counters,
};
use systec_ir::build::*;
use systec_ir::{AssignOp, Einsum, Stmt};
use systec_tensor::{CooTensor, DenseTensor, LevelFormat, SparseTensor, Tensor};

const TOL: f64 = 1e-9;

/// The thread counts every case runs under: a fixed ladder (serial,
/// even splits, an odd count that leaves ragged chunks) plus whatever
/// the CI job pins via `SYSTEC_TEST_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 7];
    if let Some(n) = std::env::var("SYSTEC_TEST_THREADS").ok().and_then(|v| v.parse().ok()) {
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

/// Compiles `prog` once and runs it on every backend × thread-count
/// cell: the interpreter anchors the expectation, the scalar-mode
/// serial VM must match it bit-for-bit (the PR 1 guarantee, preserved
/// in scalar mode), the lane-mode serial VM must match within [`TOL`],
/// and every parallel run must match within [`TOL`] with exactly equal
/// counters. Returns the serial lane-mode outputs and counters.
fn run_matrix(
    prog: &Stmt,
    inputs: &HashMap<String, Tensor>,
    label: &str,
) -> (HashMap<String, DenseTensor>, Counters) {
    let hoisted = hoist_conditions(prog.clone());
    let outputs_init = alloc_outputs(&hoisted, inputs).expect(label);
    let lowered = lower(&hoisted, inputs, &outputs_init).expect(label);
    let kernel = CompiledKernel::compile(&lowered, inputs, &outputs_init).expect(label);

    let mut out_interp = outputs_init.clone();
    let c_interp = run_lowered(&lowered, inputs, &mut out_interp).expect(label);

    let mut out_serial = outputs_init.clone();
    let c_serial = kernel.run(inputs, &mut out_serial).expect(label);
    assert_eq!(c_serial, c_interp, "{label}: serial VM counter parity");
    for (name, t) in &out_interp {
        let diff = out_serial[name].max_abs_diff(t).expect(label);
        assert!(diff < TOL, "{label}: serial lane-mode output {name} off by {diff:e}");
    }

    let mut scalar_ctx = ExecContext::new().with_lane_mode(LaneMode::Scalar);
    let mut out_scalar = outputs_init.clone();
    let mut c_scalar = Counters::new();
    kernel
        .run_with(inputs, &mut out_scalar, &mut scalar_ctx, Parallelism::Serial, &mut c_scalar)
        .expect(label);
    assert_eq!(c_scalar, c_interp, "{label}: scalar-mode counter parity");
    for (name, t) in &out_interp {
        assert_eq!(&out_scalar[name], t, "{label}: scalar-mode VM output {name}");
    }

    let mut ctx = ExecContext::new();
    for threads in thread_counts() {
        let mut out_par = outputs_init.clone();
        let mut c_par = Counters::new();
        kernel
            .run_with(inputs, &mut out_par, &mut ctx, Parallelism::threads(threads), &mut c_par)
            .expect(label);
        assert_eq!(c_par, c_interp, "{label}: t={threads} merged-counter parity");
        for (name, t) in &out_interp {
            let diff = out_par[name].max_abs_diff(t).expect(label);
            assert!(diff < TOL, "{label}: t={threads} output {name} off by {diff:e}");
        }
    }
    (out_serial, c_serial)
}

/// Random sparse square matrix in the given format; values are drawn
/// from a small set so run-length levels actually form runs.
fn random_matrix(n: usize, nnz: usize, formats: &[LevelFormat], r: &mut StdRng) -> Tensor {
    let rank = formats.len();
    let mut coo = CooTensor::new(vec![n; rank]);
    for _ in 0..nnz {
        let coords: Vec<usize> = (0..rank).map(|_| r.gen_range(0..n)).collect();
        let v = [0.5, 1.0, 2.0][r.gen_range(0usize..3)];
        coo.set(&coords, v);
        if r.gen_bool(0.5) {
            let mut next = coords.clone();
            if next[rank - 1] + 1 < n {
                next[rank - 1] += 1;
                coo.set(&next, v);
            }
        }
    }
    Tensor::Sparse(SparseTensor::from_coo(&coo, formats).unwrap())
}

fn random_dense_vec(n: usize, r: &mut StdRng) -> Tensor {
    Tensor::Dense(
        DenseTensor::from_vec(vec![n], (0..n).map(|_| r.gen_range(0.1..2.0)).collect()).unwrap(),
    )
}

const MATRIX_FORMATS: &[&[LevelFormat]] = &[
    &[LevelFormat::Dense, LevelFormat::Sparse],
    &[LevelFormat::Sparse, LevelFormat::Sparse],
    &[LevelFormat::Dense, LevelFormat::RunLength],
    &[LevelFormat::Sparse, LevelFormat::RunLength],
    &[LevelFormat::Dense, LevelFormat::Dense],
];

#[test]
fn spmv_parallel_matches_reference_across_formats() {
    for (k, formats) in MATRIX_FORMATS.iter().enumerate() {
        for seed in 0..4u64 {
            let mut r = StdRng::seed_from_u64(9000 + 100 * k as u64 + seed);
            let n = r.gen_range(3usize..16);
            let einsum = Einsum::new(
                access("y", ["i"]),
                AssignOp::Add,
                mul([access("A", ["i", "j"]), access("x", ["j"])]),
                [idx("i"), idx("j")],
            );
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, 2 * n, formats, &mut r));
            inputs.insert("x".to_string(), random_dense_vec(n, &mut r));
            let label = format!("spmv formats={formats:?} seed={seed}");
            let (out, _) = run_matrix(&einsum.naive_program(), &inputs, &label);
            let expected = reference_einsum(&einsum, &inputs).unwrap();
            assert!(out["y"].max_abs_diff(&expected).unwrap() < TOL, "{label}");
        }
    }
}

#[test]
fn scalar_reduction_and_min_plus_parallel_match() {
    // Rank-0 outputs (reduced through a length-1 private buffer) and
    // the tropical semiring (Min-merged buffers).
    for (k, formats) in MATRIX_FORMATS.iter().enumerate() {
        let mut r = StdRng::seed_from_u64(9500 + k as u64);
        let n = 9;
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), random_matrix(n, 14, formats, &mut r));
        inputs.insert("d".to_string(), random_dense_vec(n, &mut r));

        let total = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
        );
        run_matrix(&total, &inputs, &format!("scalar-sum formats={formats:?}"));

        let bf = Einsum::new(
            access("y", ["i"]),
            AssignOp::Min,
            add([access("A", ["i", "j"]), access("d", ["j"])]),
            [idx("i"), idx("j")],
        );
        let label = format!("min-plus formats={formats:?}");
        let (out, _) = run_matrix(&bf.naive_program(), &inputs, &label);
        let expected = reference_einsum(&bf, &inputs).unwrap();
        assert!(out["y"].max_abs_diff(&expected).unwrap() < TOL, "{label}");
    }
}

#[test]
fn triangular_guards_parallel_match() {
    // Bounds and residual guards interact with the chunk windows at the
    // clamped heads; ragged thread counts (7) leave uneven chunks.
    let guards: Vec<(&str, Stmt)> = vec![
        (
            "le-bound",
            Stmt::loops(
                [idx("i"), idx("j")],
                Stmt::guarded(
                    le("j", "i"),
                    assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
                ),
            ),
        ),
        (
            "ne-residual",
            Stmt::loops(
                [idx("i"), idx("j")],
                Stmt::guarded(
                    ne("i", "j"),
                    assign(access("y", ["i"]), access("A", ["i", "j"]).into()),
                ),
            ),
        ),
        (
            "or-guard",
            Stmt::loops(
                [idx("i"), idx("j")],
                Stmt::guarded(
                    or([eq("i", "j"), gt("i", "j")]),
                    assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
                ),
            ),
        ),
    ];
    for (name, prog) in &guards {
        for (k, formats) in MATRIX_FORMATS.iter().enumerate() {
            let mut r = StdRng::seed_from_u64(9700 + k as u64);
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(11, 20, formats, &mut r));
            run_matrix(prog, &inputs, &format!("guard {name} formats={formats:?}"));
        }
    }
}

#[test]
fn symmetric_pipeline_kernels_parallel_match() {
    // Full SySTeC pipeline output (diagonal splits — multiple top-level
    // loops — lets, workspaces) across owned and reduced output
    // classes, against the reference.
    let cases: Vec<(&str, Einsum, SymmetrySpec)> = vec![
        (
            "ssymv",
            Einsum::new(
                access("y", ["i"]),
                AssignOp::Add,
                mul([access("A", ["i", "j"]), access("x", ["j"])]),
                [idx("i"), idx("j")],
            ),
            SymmetrySpec::new().with_full("A", 2),
        ),
        (
            "syprd",
            Einsum::new(
                access("s", [] as [&str; 0]),
                AssignOp::Add,
                mul([access("x", ["i"]), access("A", ["i", "j"]), access("x", ["j"])]),
                [idx("i"), idx("j")],
            ),
            SymmetrySpec::new().with_full("A", 2),
        ),
        (
            "ssyrk",
            Einsum::new(
                access("C", ["i", "j"]),
                AssignOp::Add,
                mul([access("A", ["i", "k"]), access("A", ["j", "k"])]),
                [idx("i"), idx("j"), idx("k")],
            ),
            SymmetrySpec::new(),
        ),
    ];
    for (name, einsum, spec) in &cases {
        for seed in 0..3u64 {
            let mut r = StdRng::seed_from_u64(9800 + seed);
            let n = 10 + 3 * seed as usize;
            let mut coo = CooTensor::new(vec![n, n]);
            for _ in 0..(3 * n) {
                let (i, j) = (r.gen_range(0..n), r.gen_range(0..n));
                let v = r.gen_range(0.1..1.0);
                coo.set(&[i, j], v);
                if !spec.is_empty() {
                    coo.set(&[j, i], v);
                }
            }
            let mut inputs = HashMap::new();
            inputs.insert(
                "A".to_string(),
                Tensor::Sparse(
                    SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::Sparse])
                        .unwrap(),
                ),
            );
            if einsum.rhs.accesses().iter().any(|a| a.tensor.name == "x") {
                inputs.insert("x".to_string(), random_dense_vec(n, &mut r));
            }
            let kernel = Compiler::new().compile(einsum, spec).expect("compiles");
            let main = hoist_conditions(kernel.main.clone());
            let mut all_inputs = inputs.clone();
            all_inputs.extend(prepare_variants(&main, &inputs).unwrap());
            let label = format!("systec {name} seed={seed}");
            run_matrix(&main, &all_inputs, &label);
        }
    }
}

#[test]
fn randomized_sweep_counter_parity() {
    for seed in 0..30u64 {
        let mut r = StdRng::seed_from_u64(10_000 + seed);
        let n = r.gen_range(2usize..13);
        let formats = MATRIX_FORMATS[r.gen_range(0..MATRIX_FORMATS.len())];
        let concordant = r.gen_bool(0.5);
        let order = if concordant { [idx("i"), idx("j")] } else { [idx("j"), idx("i")] };
        let op = if r.gen_bool(0.5) { AssignOp::Add } else { AssignOp::Min };
        let rhs = if op == AssignOp::Add {
            mul([access("A", ["i", "j"]), access("x", ["j"])])
        } else {
            add([access("A", ["i", "j"]), access("x", ["j"])])
        };
        let einsum = Einsum::new(access("y", ["i"]), op, rhs, order);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), random_matrix(n, n + 4, formats, &mut r));
        inputs.insert("x".to_string(), random_dense_vec(n, &mut r));
        run_matrix(
            &einsum.naive_program(),
            &inputs,
            &format!("sweep seed={seed} formats={formats:?} op={op:?} concordant={concordant}"),
        );
    }
}

#[test]
fn new_vector_paths_parallel_match() {
    // Every loop shape this backend vectorizes beyond conforming
    // driver-only bodies — two-way sparse–sparse intersections (both
    // the fused dot form and the general item form), windowed
    // run-length drivers, and random-access gathers — must agree with
    // the interpreter with exact merged counters at every thread count.
    for (k, formats) in MATRIX_FORMATS.iter().enumerate() {
        for seed in 0..2u64 {
            let mut r = StdRng::seed_from_u64(11_000 + 100 * k as u64 + seed);
            let n = r.gen_range(4usize..14);
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, 2 * n, formats, &mut r));
            inputs.insert("B".to_string(), random_matrix(n, 2 * n, MATRIX_FORMATS[1], &mut r));
            inputs.insert("x".to_string(), random_dense_vec(n, &mut r));

            // Two-way intersection over two tensors (row-owned output):
            // the general VecIsectLoop form (FoldOut body).
            let isect = Einsum::new(
                access("C", ["i", "j"]),
                AssignOp::Add,
                mul([access("A", ["i", "k"]), access("B", ["j", "k"])]),
                [idx("i"), idx("j"), idx("k")],
            );
            let label = format!("par-isect formats={formats:?} seed={seed}");
            let (out, _) = run_matrix(&isect.naive_program(), &inputs, &label);
            let expected = reference_einsum(&isect, &inputs).unwrap();
            assert!(out["C"].max_abs_diff(&expected).unwrap() < TOL, "{label}");

            // The fused dot form: a workspace accumulation under a
            // triangular bound, the literal SSYRK shape.
            let dot = Stmt::loops(
                [idx("i"), idx("j")],
                Stmt::guarded(
                    le("i", "j"),
                    Stmt::Workspace {
                        name: "w".into(),
                        init: 0.0,
                        body: Box::new(Stmt::block([
                            Stmt::loops(
                                [idx("k")],
                                Stmt::Assign {
                                    lhs: systec_ir::Lhs::Scalar("w".into()),
                                    op: AssignOp::Add,
                                    rhs: mul([access("A", ["i", "k"]), access("B", ["j", "k"])]),
                                },
                            ),
                            assign(access("C", ["i", "j"]), scalar("w")),
                        ])),
                    },
                ),
            );
            run_matrix(&dot, &inputs, &format!("par-dot formats={formats:?} seed={seed}"));

            // Windowed run-length driver at the innermost level.
            let rle = Stmt::loops(
                [idx("i"), idx("j")],
                Stmt::guarded(
                    le("j", "i"),
                    assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
                ),
            );
            run_matrix(&rle, &inputs, &format!("par-rle formats={formats:?} seed={seed}"));

            // Random-access gather riding the compressed driver.
            let gather = Einsum::new(
                access("y", ["i"]),
                AssignOp::Add,
                mul([access("A", ["i", "j"]), access("B", ["j", "i"])]),
                [idx("i"), idx("j")],
            );
            let label = format!("par-gather formats={formats:?} seed={seed}");
            let (out, _) = run_matrix(&gather.naive_program(), &inputs, &label);
            let expected = reference_einsum(&gather, &inputs).unwrap();
            assert!(out["y"].max_abs_diff(&expected).unwrap() < TOL, "{label}");
        }
    }
}

#[test]
fn top_level_vector_heads_accept_chunk_windows() {
    // When the vectorized loop IS the split head — rank-1 co-iteration
    // at the root — workers clamp its coordinate window directly on the
    // vector instruction. Scalar outputs merge through per-worker
    // reduction buffers, so the chunk boundaries land inside the merge
    // and any windowing slip shows up as a value or counter mismatch.
    let pack1 = |coords: &[usize], n: usize, fmt: LevelFormat, r: &mut StdRng| {
        let mut coo = CooTensor::new(vec![n]);
        for &c in coords {
            coo.set(&[c], [0.5, 1.0, 2.0][r.gen_range(0usize..3)]);
        }
        Tensor::Sparse(SparseTensor::from_coo(&coo, &[fmt]).unwrap())
    };
    for seed in 0..6u64 {
        let mut r = StdRng::seed_from_u64(12_000 + seed);
        let n = r.gen_range(5usize..40);
        let coords_a: Vec<usize> = (0..r.gen_range(0..n)).map(|_| r.gen_range(0..n)).collect();
        let coords_b: Vec<usize> = (0..r.gen_range(0..n)).map(|_| r.gen_range(0..n)).collect();

        // Intersection dot at the root.
        let dot = Stmt::loops(
            [idx("k")],
            assign(access("s", [] as [&str; 0]), mul([access("a", ["k"]), access("b", ["k"])])),
        );
        let mut inputs = HashMap::new();
        inputs.insert("a".to_string(), pack1(&coords_a, n, LevelFormat::Sparse, &mut r));
        inputs.insert("b".to_string(), pack1(&coords_b, n, LevelFormat::Sparse, &mut r));
        run_matrix(&dot, &inputs, &format!("top-isect seed={seed}"));

        // Run-length expansion at the root.
        let rle = Stmt::loops(
            [idx("k")],
            assign(access("s", [] as [&str; 0]), mul([access("a", ["k"]), access("x", ["k"])])),
        );
        inputs.insert("a".to_string(), pack1(&coords_a, n, LevelFormat::RunLength, &mut r));
        inputs.insert("x".to_string(), random_dense_vec(n, &mut r));
        run_matrix(&rle, &inputs, &format!("top-rle seed={seed}"));
    }
}

#[test]
fn plain_row_kernels_are_splittable() {
    // Guard against the analysis silently rejecting everything (which
    // would make every parallel assertion above vacuously serial).
    let einsum = Einsum::new(
        access("y", ["i"]),
        AssignOp::Add,
        mul([access("A", ["i", "j"]), access("x", ["j"])]),
        [idx("i"), idx("j")],
    );
    let mut r = StdRng::seed_from_u64(1);
    let mut inputs = HashMap::new();
    inputs.insert("A".to_string(), random_matrix(8, 12, MATRIX_FORMATS[0], &mut r));
    inputs.insert("x".to_string(), random_dense_vec(8, &mut r));
    let prog = hoist_conditions(einsum.naive_program());
    let outputs_init = alloc_outputs(&prog, &inputs).unwrap();
    let lowered = lower(&prog, &inputs, &outputs_init).unwrap();
    let kernel = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
    assert!(kernel.splittable(), "row-addressed spmv must split");

    // An overwrite scattered across rows is order-dependent: not
    // splittable, and Threads must silently run serial (same bits).
    let transpose = Stmt::loops(
        [idx("i"), idx("j")],
        store(access("C", ["j", "i"]), access("A", ["i", "j"]).into()),
    );
    let hoisted = hoist_conditions(transpose);
    let outputs_init = alloc_outputs(&hoisted, &inputs).unwrap();
    let lowered = lower(&hoisted, &inputs, &outputs_init).unwrap();
    let kernel = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
    assert!(!kernel.splittable(), "scattered overwrites must stay serial");
    run_matrix(
        &Stmt::loops(
            [idx("i"), idx("j")],
            store(access("C", ["j", "i"]), access("A", ["i", "j"]).into()),
        ),
        &inputs,
        "transpose stays serial",
    );
}

#[test]
fn chunked_gathers_survive_hostile_window_splits() {
    // The gather bank's monotone gallop cursors are re-derived at every
    // vector-loop entry, including entries whose drive window was
    // clamped by a parallel chunk split, and worker contexts are reused
    // across consecutive chunks. This ladder makes those boundaries
    // hostile — thread counts that leave single-row and empty chunks on
    // tiny and prime-sized iteration spaces — across every gather
    // shape: root-varying with a gallop cursor, leaf-varying under an
    // invariant prefix, middle-varying with both an invariant prefix
    // and a per-hit suffix descent, and the diagonal self-gather whose
    // two varying positions force the stateless full-path search.
    let hostile = |prog: &Stmt, inputs: &HashMap<String, Tensor>, label: &str| {
        let hoisted = hoist_conditions(prog.clone());
        let outputs_init = alloc_outputs(&hoisted, inputs).expect(label);
        let lowered = lower(&hoisted, inputs, &outputs_init).expect(label);
        let kernel = CompiledKernel::compile(&lowered, inputs, &outputs_init).expect(label);
        let mut out_interp = outputs_init.clone();
        let c_interp = run_lowered(&lowered, inputs, &mut out_interp).expect(label);
        let mut ctx = ExecContext::new();
        let mut scalar_ctx = ExecContext::new().with_lane_mode(LaneMode::Scalar);
        for threads in [1usize, 2, 3, 4, 5, 7, 9] {
            for (mode, c) in [(&mut ctx, "lanes"), (&mut scalar_ctx, "scalar")] {
                let mut out = outputs_init.clone();
                let mut counters = Counters::new();
                kernel
                    .run_with(inputs, &mut out, mode, Parallelism::threads(threads), &mut counters)
                    .expect(label);
                assert_eq!(counters, c_interp, "{label}: t={threads} {c} counter parity");
                for (name, t) in &out_interp {
                    let diff = out[name].max_abs_diff(t).expect(label);
                    assert!(diff < TOL, "{label}: t={threads} {c} output {name} off by {diff:e}");
                }
            }
        }
    };

    for n in [3usize, 7, 13] {
        for (k, formats) in MATRIX_FORMATS.iter().enumerate() {
            let mut r = StdRng::seed_from_u64(13_000 + 100 * n as u64 + k as u64);
            let mut inputs = HashMap::new();
            inputs.insert("A".to_string(), random_matrix(n, 2 * n, formats, &mut r));
            inputs.insert("B".to_string(), random_matrix(n, 2 * n, MATRIX_FORMATS[1], &mut r));
            inputs.insert("x".to_string(), random_dense_vec(n, &mut r));

            // Root-varying gather: B's cursor gallops along j per row.
            let driven = Einsum::new(
                access("y", ["i"]),
                AssignOp::Add,
                mul([access("A", ["i", "j"]), access("B", ["j", "i"])]),
                [idx("i"), idx("j")],
            );
            hostile(
                &driven.naive_program(),
                &inputs,
                &format!("hostile-driven n={n} formats={formats:?}"),
            );

            // Diagonal self-gather: j occurs at both of B's positions,
            // so there is no cursor — every coordinate is a full search.
            let diag = Einsum::new(
                access("y", ["i"]),
                AssignOp::Add,
                mul([access("A", ["i", "j"]), access("B", ["j", "j"])]),
                [idx("i"), idx("j")],
            );
            hostile(
                &diag.naive_program(),
                &inputs,
                &format!("hostile-diag n={n} formats={formats:?}"),
            );
        }

        // Leaf-varying (empty suffix) and middle-varying (prefix and
        // suffix both non-empty) gathers into 3-d CSF storage.
        let csf: &[LevelFormat] = &[LevelFormat::Dense, LevelFormat::Sparse, LevelFormat::Sparse];
        let mut r = StdRng::seed_from_u64(13_500 + n as u64);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), random_matrix(n, 2 * n, csf, &mut r));
        inputs.insert("T".to_string(), random_matrix(n, 2 * n, csf, &mut r));
        inputs.insert("M".to_string(), random_matrix(n, 2 * n, MATRIX_FORMATS[0], &mut r));
        inputs.insert("x".to_string(), random_dense_vec(n, &mut r));

        let leaf = Einsum::new(
            access("s", [] as [&str; 0]),
            AssignOp::Add,
            mul([access("A", ["k", "i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("k"), idx("j")],
        );
        hostile(&leaf.naive_program(), &inputs, &format!("hostile-leaf n={n}"));

        let middle = Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("M", ["i", "j"]), access("T", ["i", "j", "i"])]),
            [idx("i"), idx("j")],
        );
        hostile(&middle.naive_program(), &inputs, &format!("hostile-middle n={n}"));
    }
}

#[test]
fn parallel_runs_are_bit_deterministic() {
    // 20 repeated runs of each parallel kernel with identical inputs
    // must produce bit-identical outputs and identical counters: chunk
    // boundaries and merge order are fixed, never first-come.
    let einsum = Einsum::new(
        access("y", ["i"]),
        AssignOp::Add,
        mul([access("A", ["i", "j"]), access("x", ["j"])]),
        [idx("i"), idx("j")],
    );
    let spec = SymmetrySpec::new().with_full("A", 2);
    let mut r = StdRng::seed_from_u64(77);
    let n = 64;
    let mut coo = CooTensor::new(vec![n, n]);
    for _ in 0..(6 * n) {
        let (i, j) = (r.gen_range(0..n), r.gen_range(0..n));
        let v = r.gen_range(0.1..1.0);
        coo.set(&[i, j], v);
        coo.set(&[j, i], v);
    }
    let mut inputs = HashMap::new();
    inputs.insert(
        "A".to_string(),
        Tensor::Sparse(
            SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::Sparse]).unwrap(),
        ),
    );
    inputs.insert("x".to_string(), random_dense_vec(n, &mut r));
    let kernel = Compiler::new().compile(&einsum, &spec).expect("compiles");
    let main = hoist_conditions(kernel.main.clone());
    let mut all_inputs = inputs.clone();
    all_inputs.extend(prepare_variants(&main, &inputs).unwrap());
    let outputs_init = alloc_outputs(&main, &all_inputs).unwrap();
    let lowered = lower(&main, &all_inputs, &outputs_init).unwrap();
    let compiled = CompiledKernel::compile(&lowered, &all_inputs, &outputs_init).unwrap();
    assert!(compiled.splittable());

    for threads in [3usize, 4] {
        let mut ctx = ExecContext::new();
        let mut reference_bits: Option<Vec<u64>> = None;
        let mut reference_counters: Option<Counters> = None;
        for rep in 0..20 {
            let mut outputs = outputs_init.clone();
            let mut counters = Counters::new();
            compiled
                .run_with(
                    &all_inputs,
                    &mut outputs,
                    &mut ctx,
                    Parallelism::threads(threads),
                    &mut counters,
                )
                .unwrap();
            let bits: Vec<u64> = outputs["y"].as_slice().iter().map(|v| v.to_bits()).collect();
            match (&reference_bits, &reference_counters) {
                (None, _) => {
                    reference_bits = Some(bits);
                    reference_counters = Some(counters);
                }
                (Some(expect), Some(c_expect)) => {
                    assert_eq!(&bits, expect, "t={threads} rep={rep}: output bits drifted");
                    assert_eq!(&counters, c_expect, "t={threads} rep={rep}: counters drifted");
                }
                _ => unreachable!(),
            }
        }
    }
}
