//! Property test: a caller-owned [`ExecContext`] carries no observable
//! state between runs. Interleaving kernels of different shapes,
//! register-file sizes and parallelism modes through **one** context
//! must produce bit-identical outputs and identical counters to running
//! each kernel with a fresh context.

use std::collections::HashMap;

use proptest::prelude::*;
use systec_codegen::{CompiledKernel, ExecContext, Parallelism};
use systec_exec::{alloc_outputs, hoist_conditions, lower, Counters};
use systec_ir::build::*;
use systec_ir::{AssignOp, Einsum};
use systec_tensor::{CooTensor, DenseTensor, LevelFormat, SparseTensor, Tensor};

/// One prepared kernel: compiled plan plus its bindings.
struct Case {
    kernel: CompiledKernel,
    inputs: HashMap<String, Tensor>,
    outputs_init: HashMap<String, DenseTensor>,
    out_name: &'static str,
}

impl Case {
    /// Runs through `ctx` and returns the output bits and counters.
    fn run(&self, ctx: &mut ExecContext, par: Parallelism) -> (Vec<u64>, Counters) {
        let mut outputs = self.outputs_init.clone();
        let mut counters = Counters::new();
        self.kernel.run_with(&self.inputs, &mut outputs, ctx, par, &mut counters).unwrap();
        (outputs[self.out_name].as_slice().iter().map(|v| v.to_bits()).collect(), counters)
    }
}

/// SpMV over CSR — sparse driver loop, vectorizable body, one owned
/// output row per outer coordinate.
fn spmv_case(n: usize, entries: &[(usize, usize, f64)], xs: &[f64]) -> Case {
    let einsum = Einsum::new(
        access("y", ["i"]),
        AssignOp::Add,
        mul([access("A", ["i", "j"]), access("x", ["j"])]),
        [idx("i"), idx("j")],
    );
    let mut coo = CooTensor::new(vec![n, n]);
    for &(i, j, v) in entries {
        if i < n && j < n {
            coo.set(&[i, j], v);
        }
    }
    let mut inputs = HashMap::new();
    inputs.insert(
        "A".to_string(),
        Tensor::Sparse(
            SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::Sparse]).unwrap(),
        ),
    );
    inputs.insert(
        "x".to_string(),
        Tensor::Dense(DenseTensor::from_vec(vec![n], xs[..n].to_vec()).unwrap()),
    );
    build_case(&einsum, inputs, "y")
}

/// A 3-d CSF contraction — deeper register files, probes, a reduced
/// (non-row) output — deliberately shaped nothing like SpMV so
/// interleaving would expose any leaked sizing or state.
fn mttkrp_case(n: usize, entries: &[(usize, usize, f64)], xs: &[f64]) -> Case {
    let einsum = Einsum::new(
        access("C", ["k", "j"]),
        AssignOp::Add,
        mul([access("A", ["i", "k", "l"]), access("B", ["l", "j"]), access("B", ["i", "j"])]),
        [idx("i"), idx("k"), idx("l"), idx("j")],
    );
    let mut coo = CooTensor::new(vec![n, n, n]);
    for &(i, j, v) in entries {
        if i < n && j < n {
            coo.set(&[i, j, (i + j) % n], v);
        }
    }
    let mut inputs = HashMap::new();
    inputs.insert(
        "A".to_string(),
        Tensor::Sparse(
            SparseTensor::from_coo(
                &coo,
                &[LevelFormat::Dense, LevelFormat::Sparse, LevelFormat::Sparse],
            )
            .unwrap(),
        ),
    );
    let cols = 3;
    let b: Vec<f64> = (0..n * cols).map(|k| xs[k % xs.len()] + k as f64 * 0.01).collect();
    inputs.insert("B".to_string(), Tensor::Dense(DenseTensor::from_vec(vec![n, cols], b).unwrap()));
    build_case(&einsum, inputs, "C")
}

fn build_case(einsum: &Einsum, inputs: HashMap<String, Tensor>, out_name: &'static str) -> Case {
    let prog = hoist_conditions(einsum.naive_program());
    let outputs_init = alloc_outputs(&prog, &inputs).unwrap();
    let lowered = lower(&prog, &inputs, &outputs_init).unwrap();
    let kernel = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
    Case { kernel, inputs, outputs_init, out_name }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn context_reuse_never_leaks_state(
        n1 in 3usize..9,
        n2 in 3usize..7,
        entries1 in prop::collection::vec((0usize..9, 0usize..9, 0.25f64..4.0), 1..20),
        entries2 in prop::collection::vec((0usize..7, 0usize..7, 0.25f64..4.0), 1..16),
        xs in prop::collection::vec(0.1f64..3.0, 9),
        schedule in prop::collection::vec((0usize..2, 0usize..3), 4..10),
    ) {
        let cases = [spmv_case(n1, &entries1, &xs), mttkrp_case(n2, &entries2, &xs)];
        let pars = [Parallelism::Serial, Parallelism::threads(2), Parallelism::threads(5)];

        // Expected results from fresh contexts, one per (case, par) cell.
        let expected: Vec<Vec<(Vec<u64>, Counters)>> = cases
            .iter()
            .map(|c| pars.iter().map(|p| c.run(&mut ExecContext::new(), *p)).collect())
            .collect();

        // One shared context, driven through an arbitrary interleaving
        // of kernels and parallelism modes.
        let mut shared = ExecContext::new();
        for &(which, par) in &schedule {
            // A divergence here means the shared context leaked state
            // between kernels/modes.
            let got = cases[which].run(&mut shared, pars[par]);
            prop_assert_eq!(&got, &expected[which][par]);
        }
    }
}
