//! Fused-body selection: compile-time specialization of vector-loop
//! step lists into closed-form [`Fused`] bodies.
//!
//! A [`crate::bytecode::VItem`] step list is a tiny interpreted program
//! the VM dispatches *per coordinate* — a match per step, operand
//! traffic through the `f` register file, and per-step miss/guard
//! bookkeeping. For the bodies that dominate real kernels (axpy, dot,
//! scale-store, gathered variants, and MTTKRP/TTM-style multi-store
//! jams) that machinery is pure overhead: the body is a fixed sequence
//! of loads feeding a fixed sequence of folds. This module recognizes
//! those shapes at compile time and lowers them to the [`Fused`] form —
//! loads into local slots, folds over locals and loop-invariant
//! registers, a positional miss mask per fold, and a bulk counter
//! recipe — which `crate::vm` executes with monomorphized unit-stride
//! loops (no step dispatch, no register-file traffic, accumulators held
//! in machine registers, invariant counter contributions accounted in
//! bulk).
//!
//! ## What fuses
//!
//! A body fuses when it is a straight line of load steps
//! ([`VStep::Load`] / [`VStep::LoadVal`] / [`VStep::LoadProbe`] /
//! [`VStep::LoadGather`]) and fold steps ([`VStep::FoldOut`] /
//! [`VStep::FoldScalar`]) such that:
//!
//! * every fold operand is either a load of this body or a register no
//!   step of the body writes (so its value is loop-invariant and can be
//!   snapshot once at loop entry);
//! * no fold operand reads a scalar slot some fold of the body
//!   accumulates into (the runners hold accumulators in machine
//!   registers, so intra-loop read-back would observe stale values);
//! * the body fits the (generous) load/fold/operand caps below.
//!
//! Everything else keeps the step list — selection never changes
//! results or counters, only the execution strategy
//! (`tests/fused_bodies.rs` pins both directions).
//!
//! ## Exactness
//!
//! Loads never depend on fold side effects (they read inputs, folds
//! write outputs and scalar slots), so hoisting all loads of a
//! coordinate before its folds preserves values exactly; fold order —
//! and each fold's left-to-right operand order — is preserved verbatim,
//! so floating-point results are bit-identical to the step list. Miss
//! scoping is positional in the step list (a `set_miss` load arms the
//! flag, the next fold consumes and clears it): each [`FFold`] records
//! exactly the `set_miss` loads between it and the previous fold as its
//! miss mask, which reproduces that scoping without a mutable flag.

use crate::bytecode::{BulkCounts, FAcc, FFold, FLoad, FOp, Fused, FusedBody, VStep};
use systec_ir::AssignOp;

/// Load cap: bodies with more per-coordinate loads than this keep the
/// step list (the largest paper kernel, 5-d MTTKRP, uses 5).
pub(crate) const MAX_FUSED_LOADS: usize = 6;
/// Fold cap (5-d MTTKRP's canonical body stores into 5 factor rows).
pub(crate) const MAX_FUSED_FOLDS: usize = 6;
/// Per-fold operand cap (MTTKRP-5's folds are 6-ary).
pub(crate) const MAX_FUSED_SRCS: usize = 6;

/// Attempts to lower a vector-loop body to its fused form. `None` means
/// the body keeps (only) the general step list.
pub(crate) fn fuse_item(steps: &[VStep]) -> Option<Fused> {
    // Scalar slots any fold of the body accumulates into: reads of
    // these are not loop-invariant, and the runners keep them in
    // machine registers, so no operand may reference them. Registers
    // any load of the body writes: reads of these are only valid
    // *after* the load in step order (a forward reference would see the
    // previous coordinate's value, which no snapshot can reproduce).
    let mut acc_slots: Vec<usize> = Vec::new();
    let mut load_dsts: Vec<usize> = Vec::new();
    for step in steps {
        match step {
            VStep::FoldScalar { slot, .. } => acc_slots.push(*slot),
            VStep::Load { dst, .. }
            | VStep::LoadVal { dst, .. }
            | VStep::LoadProbe { dst, .. }
            | VStep::LoadGather { dst, .. } => load_dsts.push(*dst),
            VStep::FoldOut { .. } => {}
        }
    }
    // An accumulator register a load also writes cannot be held in a
    // machine register across the loop (the step list re-bases the
    // accumulation on the loaded value every coordinate).
    if acc_slots.iter().any(|slot| load_dsts.contains(slot)) {
        return None;
    }

    let mut loads: Vec<FLoad> = Vec::new();
    // Register → local slot of the load that (last) wrote it.
    let mut local_of: Vec<(usize, usize)> = Vec::new();
    // `set_miss` locals since the previous fold (positional miss scope).
    let mut pending_miss: Vec<usize> = Vec::new();
    let mut folds: Vec<FFold> = Vec::new();

    let push_load = |loads: &mut Vec<FLoad>,
                     local_of: &mut Vec<(usize, usize)>,
                     dst: usize,
                     load: FLoad|
     -> Option<usize> {
        if loads.len() >= MAX_FUSED_LOADS {
            return None;
        }
        let local = loads.len();
        loads.push(load);
        // Shadow any earlier load into the same register.
        local_of.retain(|&(reg, _)| reg != dst);
        local_of.push((dst, local));
        Some(local)
    };
    let load_dsts = load_dsts.as_slice();
    let resolve =
        move |local_of: &[(usize, usize)], acc_slots: &[usize], reg: usize| -> Option<FOp> {
            if let Some(&(_, local)) = local_of.iter().find(|&&(r, _)| r == reg) {
                return Some(FOp::Local(local));
            }
            // Not loaded *yet*: a forward reference to a later load reads
            // the previous coordinate's value in the step list — no
            // entry-time snapshot reproduces that.
            if load_dsts.contains(&reg) {
                return None;
            }
            // Not a load: must be loop-invariant to snapshot at entry.
            if acc_slots.contains(&reg) {
                return None;
            }
            Some(FOp::Reg(reg))
        };

    for step in steps {
        match step {
            VStep::Load { dst, tensor, base, stride, id: _ } => {
                push_load(
                    &mut loads,
                    &mut local_of,
                    *dst,
                    FLoad::Dense { tensor: *tensor, base: base.clone(), stride: *stride },
                )?;
            }
            VStep::LoadVal { dst, .. } => {
                push_load(&mut loads, &mut local_of, *dst, FLoad::Val)?;
            }
            VStep::LoadProbe { dst, tensor, set_miss } => {
                let local = push_load(
                    &mut loads,
                    &mut local_of,
                    *dst,
                    FLoad::Probe { tensor: *tensor, set_miss: *set_miss },
                )?;
                if *set_miss {
                    pending_miss.push(local);
                }
            }
            VStep::LoadGather { dst, tensor, id, modes, var_mode, set_miss } => {
                let local = push_load(
                    &mut loads,
                    &mut local_of,
                    *dst,
                    FLoad::Gather {
                        tensor: *tensor,
                        id: *id,
                        modes: modes.clone(),
                        var_mode: *var_mode,
                        set_miss: *set_miss,
                    },
                )?;
                if *set_miss {
                    pending_miss.push(local);
                }
            }
            VStep::FoldOut { tensor, id: _, base, stride, bin, op, srcs, check_miss } => {
                let srcs = resolve_srcs(srcs, &local_of, &acc_slots, resolve)?;
                folds.push(FFold {
                    acc: FAcc::Out { tensor: *tensor, base: base.clone(), stride: *stride },
                    bin: *bin,
                    op: *op,
                    srcs,
                    check_miss: *check_miss,
                    miss: std::mem::take(&mut pending_miss).into(),
                });
            }
            VStep::FoldScalar { slot, bin, op, srcs, check_miss } => {
                let srcs = resolve_srcs(srcs, &local_of, &acc_slots, resolve)?;
                folds.push(FFold {
                    acc: FAcc::Scalar { slot: *slot },
                    bin: *bin,
                    op: *op,
                    srcs,
                    check_miss: *check_miss,
                    miss: std::mem::take(&mut pending_miss).into(),
                });
            }
        }
        if folds.len() > MAX_FUSED_FOLDS {
            return None;
        }
    }
    if folds.is_empty() {
        return None;
    }
    // Two folds accumulating into the same scalar slot would race the
    // runners' per-fold register accumulators; keep the step list.
    {
        let mut slots: Vec<usize> = Vec::new();
        for fold in &folds {
            if let FAcc::Scalar { slot } = fold.acc {
                if slots.contains(&slot) {
                    return None;
                }
                slots.push(slot);
            }
        }
    }

    let bulk = bulk_counts(steps);
    let kind = classify(&loads, &folds);
    let isect_dot = match (loads.as_slice(), folds.as_slice()) {
        (
            [FLoad::Val, FLoad::Probe { tensor, set_miss: true }],
            [FFold { acc: FAcc::Scalar { slot }, bin, op, srcs, check_miss: true, miss }],
        ) if matches!(srcs.as_ref(), [FOp::Local(0), FOp::Local(1)]) && miss.as_ref() == [1] => {
            Some((*slot, *bin, *op, *tensor))
        }
        _ => None,
    };
    let lanes = lane_count(&folds);
    Some(Fused { kind, loads: loads.into(), folds: folds.into(), bulk, isect_dot, lanes })
}

/// The virtual lane count the runners may use for this body under
/// [`crate::LaneMode::Lanes`].
///
/// A fold whose accumulator is **register-held** across the loop — a
/// scalar slot, or the single fold's loop-invariant output cell
/// (`stride == 0`; the same condition `vm::resolve` uses to hold a
/// cell in a register) — is laneable only when its reduction operator
/// has an identity: the lanes are seeded with the identity and merged
/// lane 0 → 7 after the loop, which changes the association but not
/// the participant set. `Overwrite` accumulations (last-write-wins)
/// and operators without an identity pin the body to one lane.
/// Elementwise (strided) folds store per coordinate in original order
/// either way, so they never constrain the lane count.
fn lane_count(folds: &[FFold]) -> u8 {
    let single_fold = folds.len() == 1;
    let lane_ok = folds.iter().all(|fold| {
        let register_held = match &fold.acc {
            FAcc::Scalar { .. } => true,
            FAcc::Out { stride, .. } => *stride == 0 && single_fold,
        };
        !register_held || fold.op.identity().is_some()
    });
    if lane_ok {
        crate::vm::LANES as u8
    } else {
        1
    }
}

/// Maps fold operands through the load table / invariance check,
/// enforcing the operand cap.
fn resolve_srcs(
    srcs: &[usize],
    local_of: &[(usize, usize)],
    acc_slots: &[usize],
    resolve: impl Fn(&[(usize, usize)], &[usize], usize) -> Option<FOp>,
) -> Option<Box<[FOp]>> {
    if srcs.len() > MAX_FUSED_SRCS {
        return None;
    }
    srcs.iter().map(|&reg| resolve(local_of, acc_slots, reg)).collect()
}

/// The loop-invariant per-iteration counter contributions of the step
/// list a fused body replaces — the same split `vec_prepare` applies to
/// general bodies: loads of the driver and of dense operands count per
/// iteration; probe/gather reads and miss-checked store sides count per
/// hit (in the runners).
fn bulk_counts(steps: &[VStep]) -> BulkCounts {
    let mut reads: Vec<(usize, u64)> = Vec::new();
    let mut bump = |tensor: usize| match reads.iter_mut().find(|(t, _)| *t == tensor) {
        Some((_, n)) => *n += 1,
        None => reads.push((tensor, 1)),
    };
    let mut flops = 0u64;
    let mut writes = 0u64;
    for step in steps {
        match step {
            VStep::Load { tensor, .. } | VStep::LoadVal { tensor, .. } => bump(*tensor),
            VStep::LoadProbe { .. } | VStep::LoadGather { .. } => {}
            VStep::FoldOut { op, srcs, check_miss, .. } => {
                flops += srcs.len() as u64 - 1;
                if !*check_miss {
                    flops += u64::from(*op != AssignOp::Overwrite);
                    writes += 1;
                }
            }
            VStep::FoldScalar { op, srcs, check_miss, .. } => {
                flops += srcs.len() as u64 - 1;
                if !*check_miss {
                    flops += u64::from(*op != AssignOp::Overwrite);
                }
            }
        }
    }
    BulkCounts { reads: reads.into(), flops, writes }
}

/// Names the recognized pattern (for disassembly, golden snapshots, and
/// runner dispatch).
fn classify(loads: &[FLoad], folds: &[FFold]) -> FusedBody {
    let gathered = loads.iter().any(|l| matches!(l, FLoad::Gather { .. }));
    let is_dot =
        |fold: &FFold| matches!(fold.acc, FAcc::Scalar { .. } | FAcc::Out { stride: 0, .. });
    match folds {
        [fold] if is_dot(fold) => {
            if gathered {
                FusedBody::GatherDot
            } else {
                FusedBody::Dot
            }
        }
        [fold] => {
            if gathered {
                FusedBody::GatherAxpy
            } else if fold.op == AssignOp::Overwrite {
                FusedBody::ScaleStore
            } else {
                FusedBody::Axpy
            }
        }
        [dot, axpy] if is_dot(dot) && !is_dot(axpy) && !gathered => FusedBody::DotAxpy,
        _ => FusedBody::Jam,
    }
}
