//! Caller-owned, reusable execution state.
//!
//! `vm::execute` used to rebuild its register files, counter vectors and
//! vector-loop scratch on every invocation — roughly ten small heap
//! allocations per run, which dominates repeated sub-100µs kernel
//! invocations. An [`ExecContext`] owns that state across runs: buffers
//! are *reset* (cheap fills over retained capacity) instead of
//! reallocated, so the steady-state execution path performs **zero**
//! allocations (enforced by `tests/alloc_regression.rs`).
//!
//! The context also holds one [`Bank`] per worker for row-parallel
//! execution: each worker runs over its own register files, scratch
//! vectors, private reduction buffers and
//! [`systec_exec::CounterBank`], merged deterministically (fixed worker
//! order) when the workers join.
//!
//! A context carries no plan- or data-specific state between runs beyond
//! buffer *capacity*: every run re-derives sizes and contents from the
//! program it executes, so one context can be interleaved freely across
//! kernels of different shapes (enforced by `tests/context_reuse.rs`).

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use systec_exec::CounterBank;

/// How much counter bookkeeping an execution performs.
///
/// [`CounterMode::Exact`] (the default) maintains full
/// [`systec_exec::Counters`] parity with the tree-walking interpreter —
/// bulk accounting outside the hot loops plus per-hit bumps where miss
/// semantics require them. [`CounterMode::Off`] compiles the per-hit
/// bumps (and the fused bulk recipes) out of the fused-body runners via
/// a const-generic flag: the counters returned from such a run are **not
/// meaningful** and must not be compared against the interpreter. Use it
/// when only the outputs matter and every nanosecond counts; parity
/// tests always run in `Exact`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CounterMode {
    /// Exact interpreter-parity counters (the default).
    #[default]
    Exact,
    /// Skip counter maintenance in the fused-body runners.
    Off,
}

/// Which execution mode the fused-body runners use for their
/// reduction accumulators.
///
/// [`LaneMode::Lanes`] (the default) spreads register-held reductions
/// across a **fixed virtual lane count** ([`crate::vm::LANES`] = 8
/// `f64` accumulators) and merges the lanes in a **fixed order** (lane
/// 0 → 7) after the loop. Element *k* of a span always lands in lane
/// `k % 8` regardless of thread count or chunking, so results are
/// bit-deterministic across machines, thread counts and repeated runs
/// — they are simply a *different* fixed association than the scalar
/// left fold (within 1e-9 of the interpreter, exact counter parity).
/// Breaking the loop-carried FP dependency is what lets the
/// autovectorizer keep the accumulators in ymm/zmm.
///
/// [`LaneMode::Scalar`] keeps the strict left-to-right fold of the
/// tree-walking interpreter — use it when bit-for-bit agreement with
/// the scalar reference association matters more than speed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LaneMode {
    /// Strict left-to-right scalar accumulation.
    Scalar,
    /// Eight-lane deterministic accumulation (the default).
    #[default]
    Lanes,
}

/// Per-vector-loop gather state in structure-of-arrays layout: for
/// gather slot `i`, `prefix[i]` is the invariant-prefix position a
/// mode-varying `LoadGather` resolved at loop entry (or the miss
/// sentinel) and `cursor[i]` is the monotone merge cursor into the
/// varying-mode fiber. Splitting the two keeps the per-coordinate
/// cursor updates on a dense `usize` stream the vectorizer can
/// address with one base register.
#[derive(Clone, Debug, Default)]
pub(crate) struct GatherBank {
    /// Position after descending the invariant prefix levels.
    pub prefix: Vec<usize>,
    /// Absolute position of the varying-mode cursor.
    pub cursor: Vec<usize>,
}

impl GatherBank {
    /// Resets both arrays to `n` zeroed slots, reusing capacity.
    pub fn reset(&mut self, n: usize) {
        self.prefix.clear();
        self.prefix.resize(n, 0);
        self.cursor.clear();
        self.cursor.resize(n, 0);
    }

    /// Number of gather slots.
    pub fn len(&self) -> usize {
        self.prefix.len()
    }
}

/// Per-worker execution state: register files, vector-loop scratch, a
/// counter bank, and private reduction buffers.
#[derive(Clone, Debug, Default)]
pub(crate) struct Bank {
    /// The `usize` register file (loop indices, counters, positions).
    pub u: Vec<usize>,
    /// The `f64` register file (scalars + temporaries).
    pub f: Vec<f64>,
    /// Vector-loop guard outcomes.
    pub vec_pass: Vec<bool>,
    /// Vector-loop cached base offsets.
    pub vec_bases: Vec<usize>,
    /// Vector-loop gather cursors (probe state for `LoadGather` steps),
    /// SoA so the per-coordinate cursor stream stays lane-friendly.
    pub gathers: GatherBank,
    /// This worker's work counters.
    pub counters: CounterBank,
    /// Private buffers for reduction-merged outputs, by reduced-output
    /// ordinal.
    pub reduce: Vec<Vec<f64>>,
}

impl Bank {
    /// Fills reduction buffer `ordinal` with `len` copies of `identity`,
    /// reusing capacity.
    pub fn reset_reduce(&mut self, ordinal: usize, len: usize, identity: f64) {
        if self.reduce.len() <= ordinal {
            self.reduce.resize_with(ordinal + 1, Vec::new);
        }
        let buf = &mut self.reduce[ordinal];
        buf.clear();
        buf.resize(len, identity);
    }
}

/// Reusable execution state owned by the caller.
///
/// Thread one context through repeated invocations
/// ([`crate::CompiledKernel::run_with`], or
/// `systec_kernels::Prepared::run_timed_into`) to make the steady-state
/// path allocation-free. Contexts are cheap to create but not free to
/// warm up: the first run through a context (or the first run of a
/// larger plan) sizes its buffers.
///
/// A context may be reused across different kernels and shapes in any
/// order; results are identical to running each kernel with a fresh
/// context. It is **not** `Sync` — one context serves one caller at a
/// time (parallel runs split it into per-worker banks internally).
#[derive(Debug, Default)]
pub struct ExecContext {
    banks: Vec<Bank>,
    counter_mode: CounterMode,
    lane_mode: LaneMode,
}

impl ExecContext {
    /// A fresh context with no warmed buffers (and [`CounterMode::Exact`],
    /// [`LaneMode::Lanes`]).
    pub fn new() -> Self {
        ExecContext::default()
    }

    /// The counter mode runs through this context use.
    pub fn counter_mode(&self) -> CounterMode {
        self.counter_mode
    }

    /// Sets the counter mode for subsequent runs (see [`CounterMode`]).
    pub fn set_counter_mode(&mut self, mode: CounterMode) {
        self.counter_mode = mode;
    }

    /// Builder-style [`ExecContext::set_counter_mode`].
    #[must_use]
    pub fn with_counter_mode(mut self, mode: CounterMode) -> Self {
        self.counter_mode = mode;
        self
    }

    /// The lane mode runs through this context use.
    pub fn lane_mode(&self) -> LaneMode {
        self.lane_mode
    }

    /// Sets the lane mode for subsequent runs (see [`LaneMode`]).
    pub fn set_lane_mode(&mut self, mode: LaneMode) {
        self.lane_mode = mode;
    }

    /// Builder-style [`ExecContext::set_lane_mode`].
    #[must_use]
    pub fn with_lane_mode(mut self, mode: LaneMode) -> Self {
        self.lane_mode = mode;
        self
    }

    /// Mutable access to the first `n` worker banks, growing the set if
    /// needed (serial execution uses exactly one bank).
    pub(crate) fn banks(&mut self, n: usize) -> &mut [Bank] {
        if self.banks.len() < n {
            self.banks.resize_with(n, Bank::default);
        }
        &mut self.banks[..n]
    }
}

/// A shared checkout pool of [`ExecContext`]s for concurrent callers
/// (a serving loop, a bench harness with worker threads).
///
/// `ExecContext` is deliberately not `Sync` — one context serves one
/// caller at a time — so N concurrent executors need N contexts. A pool
/// keeps warmed contexts alive between requests: [`ContextPool::checkout`]
/// pops an idle context (or creates one only when none is idle), and the
/// returned [`PooledContext`] guard hands it back on drop with all its
/// buffer capacity intact. Steady state therefore touches only a
/// `Mutex<Vec>` pop/push — **no allocation** once as many contexts exist
/// as there are concurrent callers.
///
/// Returned contexts keep their configuration ([`CounterMode`],
/// [`LaneMode`]); callers that change it should set it explicitly after
/// checkout.
#[derive(Clone, Debug, Default)]
pub struct ContextPool {
    inner: Arc<PoolInner>,
}

#[derive(Debug, Default)]
struct PoolInner {
    idle: Mutex<Vec<ExecContext>>,
    created: AtomicUsize,
}

impl ContextPool {
    /// An empty pool; contexts are created lazily on checkout.
    pub fn new() -> Self {
        ContextPool::default()
    }

    /// Checks a context out: an idle one when available, else a fresh
    /// one. The guard returns the context to the pool when dropped.
    pub fn checkout(&self) -> PooledContext {
        let ctx =
            self.inner.idle.lock().unwrap_or_else(PoisonError::into_inner).pop().unwrap_or_else(
                || {
                    self.inner.created.fetch_add(1, Ordering::Relaxed);
                    ExecContext::new()
                },
            );
        PooledContext { pool: Arc::clone(&self.inner), ctx: Some(ctx) }
    }

    /// Contexts created over the pool's lifetime — equals the peak
    /// number of concurrent checkouts (observability for the
    /// zero-alloc-steady-state tests).
    pub fn created(&self) -> usize {
        self.inner.created.load(Ordering::Relaxed)
    }

    /// Contexts currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.inner.idle.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}

/// A checked-out [`ExecContext`] (see [`ContextPool::checkout`]).
/// Dereferences to the context; dropping returns it to its pool with
/// warmed buffers intact.
#[derive(Debug)]
pub struct PooledContext {
    pool: Arc<PoolInner>,
    ctx: Option<ExecContext>,
}

impl PooledContext {
    /// Consumes the guard *without* returning the context to the pool.
    /// For callers that caught a panic mid-execution: the context's
    /// buffers may hold torn intermediate state, and repooling it would
    /// leak that state into an unrelated run. The next checkout simply
    /// creates a fresh context (`created` advances — the quarantine
    /// tax, visible to the zero-alloc tests).
    pub fn discard(mut self) {
        self.ctx = None;
    }
}

impl Deref for PooledContext {
    type Target = ExecContext;

    fn deref(&self) -> &ExecContext {
        self.ctx.as_ref().expect("present until drop")
    }
}

impl DerefMut for PooledContext {
    fn deref_mut(&mut self) -> &mut ExecContext {
        self.ctx.as_mut().expect("present until drop")
    }
}

impl Drop for PooledContext {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            self.pool.idle.lock().unwrap_or_else(PoisonError::into_inner).push(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_reuse_creates_one_context() {
        let pool = ContextPool::new();
        for _ in 0..5 {
            let mut ctx = pool.checkout();
            ctx.set_counter_mode(CounterMode::Exact);
            drop(ctx);
        }
        assert_eq!(pool.created(), 1, "serial checkout/return must reuse one context");
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_contexts() {
        let pool = ContextPool::new();
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.created(), 2);
        assert_eq!(pool.idle(), 0);
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
        // Both come back for reuse.
        let _c = pool.checkout();
        let _d = pool.checkout();
        assert_eq!(pool.created(), 2, "returned contexts are checked out again");
    }

    #[test]
    fn pool_clones_share_the_same_contexts() {
        let pool = ContextPool::new();
        let clone = pool.clone();
        drop(pool.checkout());
        drop(clone.checkout());
        assert_eq!(pool.created(), 1, "clones draw from one shared pool");
        assert_eq!(clone.idle(), 1);
    }

    #[test]
    fn configuration_survives_the_round_trip() {
        let pool = ContextPool::new();
        {
            let mut ctx = pool.checkout();
            ctx.set_counter_mode(CounterMode::Off);
            ctx.set_lane_mode(LaneMode::Scalar);
        }
        let ctx = pool.checkout();
        assert_eq!(ctx.counter_mode(), CounterMode::Off, "contexts keep their configuration");
        assert_eq!(ctx.lane_mode(), LaneMode::Scalar, "lane mode survives the round trip");
    }

    #[test]
    fn lane_mode_defaults_to_lanes() {
        assert_eq!(ExecContext::new().lane_mode(), LaneMode::Lanes);
    }
}
