//! The bytecode VM: executes a [`BytecodeProgram`] over concrete
//! tensors, producing exactly the same results and
//! [`systec_exec::Counters`] as the tree-walking interpreter in
//! `systec-exec`.
//!
//! ## Execution state
//!
//! All mutable per-run state (register files, vector-loop scratch,
//! counter banks, private reduction buffers) lives in the caller's
//! [`ExecContext`] and is reset — never reallocated — per run. The
//! binding tables that borrow from the operands (dense value slices,
//! sparse level views, per-loop fiber caches) are carried on the stack
//! via [`Scratch`] so the steady-state path performs no allocations at
//! all.
//!
//! ## Row-parallel execution
//!
//! When the compiler proved the program splittable
//! ([`BytecodeProgram::split`]) and the caller asked for
//! [`Parallelism::Threads`], the coordinate domain of each top-level
//! loop is cut into contiguous chunks (over-decomposed ~8× per worker
//! and dealt round-robin, which load-balances triangular kernels without
//! any synchronization). Every worker runs the whole program per chunk
//! over its own register files and [`CounterBank`], with the top-level
//! loop heads clamped to the chunk's coordinate window:
//!
//! * [`ParOut::Owned`] outputs are split at the chunk row boundaries —
//!   workers write disjoint sub-slices of the shared buffer in place;
//! * [`ParOut::Reduced`] outputs reduce into per-worker private buffers
//!   initialized to the reduction identity.
//!
//! Workers join, then counters and private buffers merge **in fixed
//! worker order**: counter totals are integer sums, hence exactly equal
//! to the serial execution's, and outputs are bit-identical from run to
//! run for a fixed thread count.

use std::collections::HashMap;

use systec_exec::lowered::SlotKind;
use systec_exec::{CounterBank, Counters, ExecError};
use systec_ir::AssignOp;
use systec_telemetry as telemetry;
use systec_tensor::{DenseTensor, LevelView, Tensor};

use systec_ir::BinOp;

use crate::bytecode::{
    Bound, BytecodeProgram, FAcc, FFold, FLoad, FOp, Fused, FusedBody, Instr, ParOut, SplitInfo,
    Term, VItem, VStep, MISS,
};
use crate::context::{Bank, CounterMode, ExecContext, GatherBank, LaneMode};
use crate::fuse::{MAX_FUSED_FOLDS, MAX_FUSED_LOADS, MAX_FUSED_SRCS};
use crate::Parallelism;

/// Inline capacity for per-slot binding tables.
const MAX_SLOTS: usize = 24;
/// Inline capacity for the flattened sparse level-view table.
const MAX_LEVELS: usize = 64;
/// Inline capacity for per-loop fiber caches.
const MAX_CACHES: usize = 16;
/// Inline capacity for the output binding table.
const MAX_OUTS: usize = 8;
/// Coordinate chunks dealt per worker (over-decomposition for static
/// load balance; round-robin assignment keeps the merge deterministic).
const CHUNKS_PER_WORKER: usize = 8;
/// The virtual lane count of the fused runners under
/// [`LaneMode::Lanes`]: register-held reductions accumulate into a
/// fixed-size `[f64; LANES]` array (element `k` of the drive window
/// lands in lane `k % LANES`), merged in fixed lane order at loop exit.
/// The width is a *virtual* constant — independent of the machine's
/// vector registers — so results are bit-deterministic across machines,
/// thread counts, and repeated runs; the autovectorizer maps the
/// straight-line lane bodies onto whatever ymm/zmm width exists.
pub(crate) const LANES: usize = 8;
/// Largest drive window the lane kernels still decline under
/// [`LaneMode::Lanes`]: at two full chunks or fewer the lane-merge /
/// restructure tax outweighs any ILP win (measured: 16-wide dense
/// factor loops lose ~10% laned), so those windows fold serially
/// (identical to [`LaneMode::Scalar`]) and the kernels engage only
/// strictly above it. The cutover is a pure function of the
/// clamped window — not of thread count or timing — so determinism is
/// unaffected: owned rows never split across chunks and always see the
/// same window length, and reduced accumulators were already
/// deterministic only per fixed thread count.
pub(crate) const LANE_MIN: usize = 2 * LANES;

/// A scratch table backed by inline storage for typical plan sizes,
/// falling back to the heap for outsized plans (correct either way; the
/// fallback merely allocates).
enum Scratch<T, const N: usize> {
    Inline { buf: [T; N], len: usize },
    Heap(Vec<T>),
}

impl<T: Copy + Default, const N: usize> Scratch<T, N> {
    fn new(len: usize) -> Self {
        if len <= N {
            Scratch::Inline { buf: [T::default(); N], len }
        } else {
            Scratch::Heap(vec![T::default(); len])
        }
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            Scratch::Inline { buf, len } => &mut buf[..*len],
            Scratch::Heap(v) => v,
        }
    }
}

/// One bound output: a mutable value slice plus the element offset of
/// its first cell within the full tensor (nonzero only for owned
/// row-splits under parallel execution).
struct OutBind<'a> {
    data: &'a mut [f64],
    base: usize,
}

/// Inline-or-heap table of output bindings (`OutBind` is not `Copy`, so
/// [`Scratch`] does not apply).
enum OutTable<'a, const N: usize> {
    Inline([Option<OutBind<'a>>; N], usize),
    Heap(Vec<Option<OutBind<'a>>>),
}

impl<'a, const N: usize> OutTable<'a, N> {
    fn new(len: usize) -> Self {
        if len <= N {
            OutTable::Inline(std::array::from_fn(|_| None), len)
        } else {
            OutTable::Heap((0..len).map(|_| None).collect())
        }
    }

    fn as_mut_slice(&mut self) -> &mut [Option<OutBind<'a>>] {
        match self {
            OutTable::Inline(buf, len) => &mut buf[..*len],
            OutTable::Heap(v) => v,
        }
    }
}

/// One worker's coordinate chunk: top-level head `pc`s with their index
/// extents, plus this chunk's ordinal out of the total chunk count.
#[derive(Clone, Copy)]
struct Chunk<'a> {
    heads: &'a [(usize, usize)],
    k: usize,
    n: usize,
}

impl Chunk<'_> {
    /// The inclusive coordinate window this chunk clamps head `pc` to,
    /// or `None` when `pc` is not a split head (inner loops).
    #[inline]
    fn window(&self, pc: usize) -> Option<(i64, i64)> {
        for &(head_pc, extent) in self.heads {
            if head_pc == pc {
                let lo = (self.k * extent / self.n) as i64;
                let hi = ((self.k + 1) * extent / self.n) as i64 - 1;
                return Some((lo, hi));
            }
        }
        None
    }
}

/// Intersects a loop head's clamped bounds with the chunk's coordinate
/// window when `pc` is a split head — the one place chunking touches
/// loop iteration, shared by every head kind.
#[inline]
fn clamp_to_chunk(chunk: Option<Chunk<'_>>, pc: usize, lo_v: &mut i64, hi_v: &mut i64) {
    if let Some(c) = chunk {
        if let Some((clo, chi)) = c.window(pc) {
            *lo_v = (*lo_v).max(clo);
            *hi_v = (*hi_v).min(chi);
        }
    }
}

/// A sparse input resolved to raw views: per-level views live in one
/// flattened table indexed through `BytecodeProgram::level_base`.
#[inline]
fn level<'a>(
    levels: &[Option<LevelView<'a>>],
    base: &[usize],
    tensor: usize,
    k: usize,
) -> LevelView<'a> {
    levels[base[tensor] + k].expect("sparse level bound")
}

#[inline]
fn offset(u: &[usize], terms: &[Term]) -> usize {
    // Nearly every access is rank 1 or 2; keep those branch-free.
    match terms {
        [t] => u[t.reg] * t.stride,
        [s, t] => u[s.reg] * s.stride + u[t.reg] * t.stride,
        _ => terms.iter().map(|t| u[t.reg] * t.stride).sum(),
    }
}

/// Evaluates vector-loop guards into the `pass` scratch, returning the
/// number of passing items — the selector between the fused runners
/// (exactly one passing item with a fused body) and the general
/// per-coordinate step path.
#[inline]
fn eval_guards(items: &[VItem], u: &[usize], pass: &mut [bool]) -> usize {
    let mut n = 0usize;
    for item in items {
        let ok = item.guard.iter().all(|(op, a, b)| op.eval(u[*a], u[*b]));
        pass[item.id] = ok;
        n += usize::from(ok);
    }
    n
}

/// Telemetry label for a fused-body kind (`Steps` is counted at the
/// general-path sites instead).
fn body_kind(kind: FusedBody) -> telemetry::BodyKind {
    match kind {
        FusedBody::Dot => telemetry::BodyKind::Dot,
        FusedBody::Axpy => telemetry::BodyKind::Axpy,
        FusedBody::ScaleStore => telemetry::BodyKind::ScaleStore,
        FusedBody::DotAxpy => telemetry::BodyKind::DotAxpy,
        FusedBody::GatherDot => telemetry::BodyKind::GatherDot,
        FusedBody::GatherAxpy => telemetry::BodyKind::GatherAxpy,
        FusedBody::Jam => telemetry::BodyKind::Jam,
    }
}

/// The single passing item's fused body, if the loop can take the fused
/// path this entry: with more than one item passing, coordinate-major
/// step execution is the only order-preserving strategy.
#[inline]
fn fused_single<'p>(items: &'p [VItem], pass: &[bool], n_pass: usize) -> Option<&'p Fused> {
    if n_pass != 1 {
        return None;
    }
    items.iter().find(|item| pass[item.id]).and_then(|item| item.fused.as_ref())
}

/// Caches the loop-invariant base offsets of passing items and accounts
/// the loop's *invariant* counters in bulk: every step of a passing
/// item executes exactly once per coordinate, so its invariant counter
/// contribution is a per-iteration constant times the iteration count —
/// identical totals to bumping inside the loop, with no hot-loop
/// counter traffic. Hit-dependent contributions (probe and gather
/// reads, the store side of miss-checked folds) are counted by
/// [`VecRun::exec_coord`] instead. Guards must already be evaluated
/// ([`eval_guards`]).
#[allow(clippy::too_many_arguments)]
fn vec_prepare(
    items: &[VItem],
    u: &[usize],
    iters: u64,
    pass: &[bool],
    bases: &mut [usize],
    reads: &mut [u64],
    flops: &mut u64,
    writes: &mut u64,
) {
    for item in items {
        if !pass[item.id] {
            continue;
        }
        for step in item.steps.iter() {
            match step {
                VStep::Load { tensor, id, base, .. } => {
                    bases[*id] = offset(u, base);
                    reads[*tensor] += iters;
                }
                VStep::LoadVal { tensor, .. } => {
                    reads[*tensor] += iters;
                }
                // Probe / gather reads count only on a hit.
                VStep::LoadProbe { .. } | VStep::LoadGather { .. } => {}
                VStep::FoldOut { tensor: _, id, base, op, srcs, check_miss, .. } => {
                    bases[*id] = offset(u, base);
                    // The fold always evaluates; with check_miss the
                    // store (write + reduce flop) is hit-dependent.
                    let mut per_iter = srcs.len() as u64 - 1;
                    if !*check_miss {
                        per_iter += u64::from(*op != AssignOp::Overwrite);
                        *writes += iters;
                    }
                    *flops += per_iter * iters;
                }
                VStep::FoldScalar { op, srcs, check_miss, .. } => {
                    let mut per_iter = srcs.len() as u64 - 1;
                    if !*check_miss {
                        per_iter += u64::from(*op != AssignOp::Overwrite);
                    }
                    *flops += per_iter * iters;
                }
            }
        }
    }
}

/// Folds registers through `bin`; the dominant binary shape is
/// branch-free. Flops are accounted in bulk by [`vec_prepare`].
#[inline]
fn fold(bin: &systec_ir::BinOp, srcs: &[usize], f: &[f64]) -> f64 {
    match srcs {
        [a, b] => bin.apply(f[*a], f[*b]),
        _ => {
            let (first, rest) = srcs.split_first().expect("folds have operands");
            let mut v = f[*first];
            for s in rest {
                v = bin.apply(v, f[*s]);
            }
            v
        }
    }
}

/// Per-vector-loop execution state: the body items with their
/// precomputed guard outcomes and bases, every binding table the steps
/// touch, and the hit-dependent counter accumulators ([`vec_prepare`]
/// bulk-counts only the invariant contributions).
struct VecRun<'r, 'a, 'o> {
    items: &'r [VItem],
    idx: usize,
    pass: &'r [bool],
    bases: &'r [usize],
    gathers: &'r mut GatherBank,
    u: &'r mut [usize],
    f: &'r mut [f64],
    dense: &'r [&'a [f64]],
    vals: &'r [&'a [f64]],
    levels: &'r [Option<LevelView<'a>>],
    lvl_base: &'r [usize],
    outs: &'r mut [Option<OutBind<'o>>],
    oo: &'r [usize],
    reads: &'r mut [u64],
    /// Hit-dependent flop / write counts, folded into the program
    /// totals when the loop instruction finishes.
    flops: u64,
    writes: u64,
    /// The per-coordinate miss flag (see [`VStep`]).
    miss: bool,
}

/// Resolves the invariant prefix position (and forward cursor at the
/// varying mode) of one single-varying-mode gather at loop entry.
#[allow(clippy::too_many_arguments)]
fn init_gather_cursor(
    levels: &[Option<LevelView<'_>>],
    lvl_base: &[usize],
    u: &[usize],
    gathers: &mut GatherBank,
    tensor: usize,
    id: usize,
    modes: &[usize],
    var_mode: usize,
) {
    let mut p = 0usize;
    for (lv, &m) in modes.iter().enumerate().take(var_mode) {
        match level(levels, lvl_base, tensor, lv).find(p, u[m]) {
            Some(next) => p = next,
            None => {
                p = MISS;
                break;
            }
        }
    }
    let cursor = if p == MISS {
        0
    } else {
        match level(levels, lvl_base, tensor, var_mode) {
            LevelView::Sparse { pos, .. } | LevelView::RunLength { pos, .. } => pos[p],
            LevelView::Dense { .. } => 0,
        }
    };
    gathers.prefix[id] = p;
    gathers.cursor[id] = cursor;
}

/// Resolves a gather at `coord`. With `var_mode: Some(k)` the loop
/// index appears at exactly one subscript position `k`: the invariant
/// prefix position is cached ([`init_gather_cursor`]), position `k`
/// advances a forward-only cursor (sparse gallop / run-length run
/// cursor / dense direct index), and the invariant suffix descends per
/// hit. With `None` the index appears at several positions, so no
/// single monotone cursor exists and the full path is searched.
#[inline]
#[allow(clippy::too_many_arguments)]
fn gather_find(
    levels: &[Option<LevelView<'_>>],
    lvl_base: &[usize],
    u: &[usize],
    gathers: &mut GatherBank,
    tensor: usize,
    id: usize,
    modes: &[usize],
    var_mode: Option<usize>,
    coord: usize,
) -> Option<usize> {
    let Some(vm) = var_mode else {
        let mut p = 0usize;
        for (lv, &m) in modes.iter().enumerate() {
            p = level(levels, lvl_base, tensor, lv).find(p, u[m])?;
        }
        return Some(p);
    };
    let prefix = gathers.prefix[id];
    if prefix == MISS {
        return None;
    }
    let mut p = match level(levels, lvl_base, tensor, vm) {
        LevelView::Sparse { pos, crd, .. } => {
            // Coordinates are monotone within the loop, so the cursor
            // only moves forward; the remainder search gallops past
            // gaps in one partition_point.
            let cur = &mut gathers.cursor[id];
            let end = pos[prefix + 1];
            if *cur < end && crd[*cur] < coord {
                *cur += crd[*cur..end].partition_point(|&c| c < coord);
            }
            if *cur < end && crd[*cur] == coord {
                *cur
            } else {
                return None;
            }
        }
        LevelView::RunLength { pos, run_start, run_end, .. } => {
            // Runs are sorted and disjoint: walk forward one run at a
            // time (runs passed once are never revisited).
            let cur = &mut gathers.cursor[id];
            let end = pos[prefix + 1];
            while *cur < end && run_end[*cur] < coord {
                *cur += 1;
            }
            if *cur < end && run_start[*cur] <= coord {
                *cur
            } else {
                return None;
            }
        }
        view => view.find(prefix, coord)?,
    };
    // Middle-mode-varying gathers descend the invariant suffix per hit
    // (leaf-varying gathers have an empty suffix, so this is free).
    for (lv, &m) in modes.iter().enumerate().skip(vm + 1) {
        p = level(levels, lvl_base, tensor, lv).find(p, u[m])?;
    }
    Some(p)
}

impl<'a> VecRun<'_, 'a, '_> {
    /// Resolves the invariant prefix position (and varying-mode cursor)
    /// of every single-varying-mode gather once per loop entry.
    fn init_gathers(&mut self) {
        if self.gathers.len() == 0 {
            // No gathers anywhere in the plan (all eight paper
            // kernels): skip the step scan on every loop entry.
            return;
        }
        let items = self.items;
        for item in items {
            if !self.pass[item.id] {
                continue;
            }
            for step in item.steps.iter() {
                let VStep::LoadGather { tensor, id, modes, var_mode: Some(vm), .. } = step else {
                    continue;
                };
                init_gather_cursor(
                    self.levels,
                    self.lvl_base,
                    self.u,
                    self.gathers,
                    *tensor,
                    *id,
                    modes,
                    *vm,
                );
            }
        }
    }

    /// Executes the passing items for one coordinate. `leaf` carries the
    /// driver's value position, `probe` the probed fiber's match (if the
    /// loop intersects two fibers).
    #[inline]
    fn exec_coord(
        &mut self,
        coord: usize,
        leaf: Option<(&'a [f64], usize)>,
        probe: Option<(&'a [f64], Option<usize>)>,
    ) {
        self.u[self.idx] = coord;
        self.miss = false;
        let items = self.items;
        for item in items {
            if !self.pass[item.id] {
                continue;
            }
            for step in item.steps.iter() {
                match step {
                    VStep::Load { dst, tensor, id, stride, .. } => {
                        self.f[*dst] = self.dense[*tensor][self.bases[*id] + coord * stride];
                    }
                    VStep::LoadVal { dst, .. } => {
                        let (vals, pos) = leaf.expect("driver value in a driven vector loop");
                        self.f[*dst] = vals[pos];
                    }
                    VStep::LoadProbe { dst, tensor, set_miss } => {
                        let (pvals, pmatch) = probe.expect("probe value in an intersection loop");
                        match pmatch {
                            Some(pos) => {
                                self.f[*dst] = pvals[pos];
                                self.reads[*tensor] += 1;
                            }
                            None => {
                                self.f[*dst] = 0.0;
                                self.miss |= *set_miss;
                            }
                        }
                    }
                    VStep::LoadGather { dst, tensor, id, modes, var_mode, set_miss } => {
                        match self.gather(*tensor, *id, modes, *var_mode, coord) {
                            Some(pos) => {
                                self.f[*dst] = self.vals[*tensor][pos];
                                self.reads[*tensor] += 1;
                            }
                            None => {
                                self.f[*dst] = 0.0;
                                self.miss |= *set_miss;
                            }
                        }
                    }
                    VStep::FoldOut { tensor, id, stride, bin, op, srcs, check_miss, .. } => {
                        let v = fold(bin, srcs, self.f);
                        if !(*check_miss && self.miss) {
                            let off = self.bases[*id] + coord * stride;
                            let ob = self.outs[self.oo[*tensor]].as_mut().expect("output bound");
                            let cell = &mut ob.data[off - ob.base];
                            *cell = op.apply(*cell, v);
                            if *check_miss {
                                self.writes += 1;
                                if *op != AssignOp::Overwrite {
                                    self.flops += 1;
                                }
                            }
                        }
                        self.miss = false;
                    }
                    VStep::FoldScalar { slot, bin, op, srcs, check_miss } => {
                        let v = fold(bin, srcs, self.f);
                        if !(*check_miss && self.miss) {
                            self.f[*slot] = op.apply(self.f[*slot], v);
                            if *check_miss && *op != AssignOp::Overwrite {
                                self.flops += 1;
                            }
                        }
                        self.miss = false;
                    }
                }
            }
        }
    }

    /// Resolves a gather at `coord`: the cached-prefix cursor walk for
    /// single-varying-mode gathers, a full per-level search otherwise.
    #[inline]
    fn gather(
        &mut self,
        tensor: usize,
        id: usize,
        modes: &[usize],
        var_mode: Option<usize>,
        coord: usize,
    ) -> Option<usize> {
        gather_find(
            self.levels,
            self.lvl_base,
            self.u,
            self.gathers,
            tensor,
            id,
            modes,
            var_mode,
            coord,
        )
    }
}

// ---------------------------------------------------------------------------
// Fused-body execution
// ---------------------------------------------------------------------------

/// Semiring monomorphization for the fused runners: the (bin, reduce)
/// pairs the paper kernels use get dedicated instantiations so the hot
/// loops carry no operator dispatch; everything else runs through
/// [`DynSemi`] (still one match per application, but free of all other
/// step machinery). The `op` arguments are the fold's own operators —
/// the specialized impls ignore them (the dispatch site proved every
/// fold of the body uses exactly this pair).
trait Semi: Copy {
    fn bin(self, op: BinOp, a: f64, b: f64) -> f64;
    fn red(self, op: AssignOp, acc: f64, v: f64) -> f64;
}

/// `a * b` folds reduced by `+=` (every arithmetic paper kernel).
#[derive(Clone, Copy)]
struct MulAddSemi;
impl Semi for MulAddSemi {
    #[inline(always)]
    fn bin(self, _: BinOp, a: f64, b: f64) -> f64 {
        a * b
    }
    #[inline(always)]
    fn red(self, _: AssignOp, acc: f64, v: f64) -> f64 {
        acc + v
    }
}

/// `a + b` folds reduced by `min=` (tropical kernels: Bellman–Ford).
#[derive(Clone, Copy)]
struct AddMinSemi;
impl Semi for AddMinSemi {
    #[inline(always)]
    fn bin(self, _: BinOp, a: f64, b: f64) -> f64 {
        a + b
    }
    #[inline(always)]
    fn red(self, _: AssignOp, acc: f64, v: f64) -> f64 {
        acc.min(v)
    }
}

/// Fallback: apply the fold's own operators.
#[derive(Clone, Copy)]
struct DynSemi;
impl Semi for DynSemi {
    #[inline(always)]
    fn bin(self, op: BinOp, a: f64, b: f64) -> f64 {
        op.apply(a, b)
    }
    #[inline(always)]
    fn red(self, op: AssignOp, acc: f64, v: f64) -> f64 {
        op.apply(acc, v)
    }
}

// ---------------------------------------------------------------------------
// Lane primitives
// ---------------------------------------------------------------------------

/// The invariant prefix of a dot chain: `[lead ∘] a [∘ mid]`.
#[inline(always)]
fn chain_prefix<S: Semi>(s: S, bin: BinOp, lead: Option<f64>, a: f64, mid: Option<f64>) -> f64 {
    let mut v = match lead {
        Some(l) => s.bin(bin, l, a),
        None => a,
    };
    if let Some(k) = mid {
        v = s.bin(bin, v, k);
    }
    v
}

/// One lane step over a full chunk: `lanes[k] op= va[k] bin xa[k]` for
/// every lane. Both formulations apply the same operations in the same
/// order per lane, so outputs are bit-identical across the feature
/// gate; the `simd` build expresses the step as whole-array maps — the
/// exact shape a `std::simd` drop-in would take — which the optimizer
/// keeps in vector registers more reliably on some toolchains.
#[cfg(not(feature = "simd"))]
#[inline(always)]
fn lane_accumulate<S: Semi>(
    s: S,
    bin: BinOp,
    op: AssignOp,
    lanes: &mut [f64; LANES],
    va: [f64; LANES],
    xa: [f64; LANES],
) {
    for k in 0..LANES {
        lanes[k] = s.red(op, lanes[k], s.bin(bin, va[k], xa[k]));
    }
}

/// One lane step over a full chunk (whole-array formulation; see the
/// default build's doc for the bit-identity argument).
#[cfg(feature = "simd")]
#[inline(always)]
fn lane_accumulate<S: Semi>(
    s: S,
    bin: BinOp,
    op: AssignOp,
    lanes: &mut [f64; LANES],
    va: [f64; LANES],
    xa: [f64; LANES],
) {
    let prod: [f64; LANES] = std::array::from_fn(|k| s.bin(bin, va[k], xa[k]));
    *lanes = std::array::from_fn(|k| s.red(op, lanes[k], prod[k]));
}

/// Merges the lane accumulators into the caller's scalar accumulator in
/// fixed lane order (`acc0`, then lane `0 → LANES-1`) — the one place
/// lane values recombine, so the merge order alone fixes the result
/// bits for a given lane assignment.
#[inline(always)]
fn lane_merge<S: Semi>(s: S, op: AssignOp, acc0: f64, lanes: &[f64; LANES]) -> f64 {
    let mut acc = acc0;
    for &l in lanes {
        acc = s.red(op, acc, l);
    }
    acc
}

/// An entry-resolved per-coordinate load: dense operands are concrete
/// slices with their invariant base offsets folded in.
#[derive(Clone, Copy)]
enum RLoad<'a, 'p> {
    /// The driver's value at the current position.
    Val,
    /// The probed fiber's value (intersection drives).
    Probe { tensor: usize, set_miss: bool },
    /// `slice[base + coord * stride]`.
    Dense { slice: &'a [f64], base: usize, stride: usize },
    /// Random-access gather (shares [`gather_find`] with the step path).
    Gather { tensor: usize, id: usize, modes: &'p [usize], var_mode: Option<usize>, set_miss: bool },
}

/// An entry-resolved fold operand: loop-invariant registers become
/// constants.
#[derive(Clone, Copy)]
enum RSrc {
    Local(usize),
    Const(f64),
}

/// An entry-resolved accumulator target.
#[derive(Clone, Copy)]
enum RAcc {
    /// `f[slot]`, held in [`RFold::accv`] across the loop.
    Slot { slot: usize },
    /// A loop-invariant output cell (stride 0, single fold), register-
    /// held likewise — the write *counts* stay per-iteration (bulk) /
    /// per-hit exactly as if every store happened.
    Cell { ord: usize, off: usize },
    /// A strided output store per coordinate.
    Out { ord: usize, off: usize, stride: usize },
}

/// One entry-resolved fold: leading invariant operands pre-folded into
/// `lead` (exact — the fold chain is left-associative), the rest a
/// fixed operand array over load locals and snapshot constants.
#[derive(Clone, Copy)]
struct RFold {
    lead: f64,
    has_lead: bool,
    srcs: [RSrc; MAX_FUSED_SRCS],
    n_srcs: usize,
    acc: RAcc,
    /// Register accumulator for `Slot` / `Cell` targets.
    accv: f64,
    /// Lane accumulators for `Slot` / `Cell` targets under
    /// [`LaneMode::Lanes`], seeded with the fold op's identity and
    /// merged into `accv` in fixed lane order at loop exit.
    lanev: [f64; LANES],
    bin: BinOp,
    op: AssignOp,
    check_miss: bool,
    /// Per-hit store-side counter contributions (miss-checked folds).
    hit_write: bool,
    hit_flop: bool,
    /// Bitmask over load locals gating this fold's store.
    miss_mask: u32,
}

/// The entry-resolved executable form of a [`Fused`] body.
struct RBody<'a, 'p> {
    loads: [RLoad<'a, 'p>; MAX_FUSED_LOADS],
    n_loads: usize,
    folds: [RFold; MAX_FUSED_FOLDS],
    n_folds: usize,
    /// The loop's index register (set per coordinate only when a
    /// full-search gather reads it; set once at exit otherwise).
    idx: usize,
    needs_u_idx: bool,
    /// Whether register-held folds accumulate into [`RFold::lanev`]
    /// (the body's plan-level lane count is > 1 and the context asked
    /// for [`LaneMode::Lanes`]).
    use_lanes: bool,
    /// The lane the *next* coordinate's folds land in. Advances once
    /// per executed coordinate — including all-miss coordinates — so
    /// the lane assignment is a pure function of the drive window.
    lane_k: usize,
}

/// How a fused loop iterates its coordinates — one variant per
/// vector-loop instruction kind.
enum FDrive<'a> {
    /// Counted dense loop over `lo..=hi`.
    Range { lo: usize, hi: usize },
    /// Compressed driver: positions `start..stop` of `crd`, values at
    /// the same positions.
    Crd { vals: &'a [f64], crd: &'a [usize], start: usize, stop: usize },
    /// Run-length driver: runs `start..stop` clamped to `[lo, hi]`,
    /// value constant per run.
    Rle {
        vals: &'a [f64],
        run_start: &'a [usize],
        run_end: &'a [usize],
        start: usize,
        stop: usize,
        lo: usize,
        hi: usize,
    },
    /// Two-way intersection: the driver window merged against the
    /// probed fiber with a forward-only cursor ([`ProbeCur`]).
    Isect {
        vals: &'a [f64],
        crd: &'a [usize],
        start: usize,
        stop: usize,
        bvals: &'a [f64],
        probe: ProbeCur<'a>,
    },
}

/// Upper bound on the number of coordinates a drive window executes —
/// the generic fused path's lane cutover measure (compressed and
/// intersection drivers count stored positions; dense drivers count
/// the clamped coordinate span; run-length drivers measure against the
/// run extents via [`rle_extent`]).
fn drive_span(drive: &FDrive<'_>) -> usize {
    match drive {
        FDrive::Range { lo, hi } => hi.saturating_add(1).saturating_sub(*lo),
        FDrive::Crd { start, stop, .. } | FDrive::Isect { start, stop, .. } => {
            stop.saturating_sub(*start)
        }
        FDrive::Rle { run_start, run_end, start, stop, lo, hi, .. } => {
            rle_extent(run_start, run_end, *start, *stop, *lo, *hi)
        }
    }
}

/// Upper bound on the coordinates a run-length window covers: first
/// selected run's clamped start through last selected run's clamped
/// end. Unclamped loops carry a sentinel `hi` (`i64::MAX`), so the raw
/// `[lo, hi]` span saturates and would put every tiny fiber over the
/// lane cutover; bounding by the run extents keeps the cutover a real
/// measure of work.
fn rle_extent(
    run_start: &[usize],
    run_end: &[usize],
    start: usize,
    stop: usize,
    lo: usize,
    hi: usize,
) -> usize {
    if start >= stop {
        return 0;
    }
    let first = run_start[start].max(lo);
    let last = run_end[stop - 1].min(hi);
    last.saturating_add(1).saturating_sub(first)
}

/// Forward-only cursor over the probed side of an intersection drive —
/// one variant per level format, so probes into dense and run-length
/// levels reach the fused tier through the same merge loop as
/// compressed probes. Driver coordinates are monotone, so every
/// variant's cursor only moves forward.
#[derive(Clone, Copy)]
enum ProbeCur<'a> {
    /// The probed path prefix is unstored: every probe misses (the
    /// driver still iterates, as in the interpreter).
    Empty,
    /// Compressed fiber: gallop over `crd[cur..end]`.
    Crd { crd: &'a [usize], cur: usize, end: usize },
    /// Dense fiber: direct index, hit iff `coord < size`.
    Dense { base: usize, size: usize },
    /// Run-length fiber: walk runs `cur..end`, hit iff the current
    /// run covers `coord`; the hit position is the run index.
    Runs { run_start: &'a [usize], run_end: &'a [usize], cur: usize, end: usize },
}

impl ProbeCur<'_> {
    /// Advances the cursor to `coord` and returns the value position on
    /// a hit.
    #[inline(always)]
    fn find(&mut self, coord: usize) -> Option<usize> {
        match self {
            ProbeCur::Empty => None,
            ProbeCur::Crd { crd, cur, end } => {
                if *cur < *end && crd[*cur] < coord {
                    *cur += crd[*cur..*end].partition_point(|&x| x < coord);
                }
                (*cur < *end && crd[*cur] == coord).then_some(*cur)
            }
            ProbeCur::Dense { base, size } => (coord < *size).then(|| *base + coord),
            ProbeCur::Runs { run_start, run_end, cur, end } => {
                while *cur < *end && run_end[*cur] < coord {
                    *cur += 1;
                }
                (*cur < *end && run_start[*cur] <= coord).then_some(*cur)
            }
        }
    }
}

#[inline(always)]
fn src_val(src: RSrc, locals: &[f64; MAX_FUSED_LOADS]) -> f64 {
    match src {
        RSrc::Local(i) => locals[i],
        RSrc::Const(v) => v,
    }
}

/// The fused analogue of [`VecRun`]: binding tables plus hit-dependent
/// counter accumulators. Bulk (per-iteration) counters come from the
/// body's compile-time recipe; with [`CounterMode::Off`] the `COUNT`
/// flag compiles all counter maintenance out of the loops.
struct FusedRun<'r, 'a, 'o> {
    u: &'r mut [usize],
    f: &'r mut [f64],
    gathers: &'r mut GatherBank,
    dense: &'r [&'a [f64]],
    vals: &'r [&'a [f64]],
    levels: &'r [Option<LevelView<'a>>],
    lvl_base: &'r [usize],
    outs: &'r mut [Option<OutBind<'o>>],
    oo: &'r [usize],
    reads: &'r mut [u64],
    flops: u64,
    writes: u64,
    /// The context's [`LaneMode`], as a bool: lane execution applies
    /// only where the body's plan-level lane count also allows it.
    lanes: bool,
}

impl<'a> FusedRun<'_, 'a, '_> {
    /// Executes one fused loop under the context's counter mode.
    #[inline]
    fn run_mode(
        &mut self,
        mode: CounterMode,
        fu: &Fused,
        drive: FDrive<'a>,
        idx: usize,
        iters: u64,
    ) {
        match mode {
            CounterMode::Exact => self.run::<true>(fu, drive, idx, iters),
            CounterMode::Off => self.run::<false>(fu, drive, idx, iters),
        }
    }

    #[inline]
    fn run<const COUNT: bool>(&mut self, fu: &Fused, drive: FDrive<'a>, idx: usize, iters: u64) {
        if COUNT {
            // Invariant contributions in bulk, from the recipe derived
            // off the step list this body replaces.
            for &(t, n) in fu.bulk.reads.iter() {
                self.reads[t] += n * iters;
            }
            self.flops += fu.bulk.flops * iters;
            self.writes += fu.bulk.writes * iters;
        }
        // Closed-form loops for the canonical shapes run straight off
        // the compile-time form — entry cost is a handful of scalar
        // resolutions, which matters for short fibers entered many
        // times (SSYRK's intersection).
        //
        // The short-fiber cutover applies to the generic path too: a
        // window below [`LANE_MIN`] folds serially (in interpreter
        // order), so the lane-merge tax is never paid on fibers too
        // short to amortize it. The gate is a pure function of the
        // drive window — deterministic, like the special runners'.
        let use_lanes = self.lanes && fu.lanes > 1 && drive_span(&drive) > LANE_MIN;
        if matches!(fu.kind, FusedBody::Dot | FusedBody::DotAxpy)
            && self.run_special::<COUNT>(fu, &drive, idx, use_lanes)
        {
            return;
        }
        let mut body = self.resolve(fu, idx, use_lanes);
        for ld in fu.loads.iter() {
            if let FLoad::Gather { tensor, id, modes, var_mode: Some(vm), .. } = ld {
                init_gather_cursor(
                    self.levels,
                    self.lvl_base,
                    self.u,
                    self.gathers,
                    *tensor,
                    *id,
                    modes,
                    *vm,
                );
            }
        }
        // One semiring for the whole body → monomorphized loops.
        let folds = &body.folds[..body.n_folds];
        let (bin0, op0) = (folds[0].bin, folds[0].op);
        let uniform = folds.iter().all(|fo| fo.bin == bin0 && fo.op == op0);
        match (uniform, bin0, op0) {
            (true, BinOp::Mul, AssignOp::Add) => {
                self.drive_shape::<MulAddSemi, COUNT>(&mut body, MulAddSemi, drive)
            }
            (true, BinOp::Add, AssignOp::Min) => {
                self.drive_shape::<AddMinSemi, COUNT>(&mut body, AddMinSemi, drive)
            }
            _ => self.drive_shape::<DynSemi, COUNT>(&mut body, DynSemi, drive),
        }
        // Flush register-held accumulators: under lanes, merge the lane
        // array into the entry-seeded accumulator in fixed lane order.
        // `op.apply` is exactly the reduction the loop ran (the
        // semiring dispatch above proved the op pair), so the merge is
        // bit-identical whichever `Semi` drove the loop.
        let use_lanes = body.use_lanes;
        for fold in &body.folds[..body.n_folds] {
            let mut acc = fold.accv;
            if use_lanes {
                for &l in &fold.lanev {
                    acc = fold.op.apply(acc, l);
                }
            }
            match fold.acc {
                RAcc::Slot { slot } => self.f[slot] = acc,
                RAcc::Cell { ord, off } => {
                    let ob = self.outs[ord].as_mut().expect("output bound");
                    let i = off - ob.base;
                    ob.data[i] = acc;
                }
                RAcc::Out { .. } => {}
            }
        }
    }

    /// Resolves a fused body against the current bindings: dense bases
    /// and invariant registers are snapshot once, accumulators load
    /// their starting values (lane accumulators seed with the fold op's
    /// identity under lane mode).
    fn resolve<'p>(&mut self, fu: &'p Fused, idx: usize, use_lanes: bool) -> RBody<'a, 'p> {
        let mut body = RBody {
            loads: [RLoad::Val; MAX_FUSED_LOADS],
            n_loads: fu.loads.len(),
            folds: [RFold {
                lead: 0.0,
                has_lead: false,
                srcs: [RSrc::Const(0.0); MAX_FUSED_SRCS],
                n_srcs: 0,
                acc: RAcc::Slot { slot: 0 },
                accv: 0.0,
                lanev: [0.0; LANES],
                bin: BinOp::Add,
                op: AssignOp::Add,
                check_miss: false,
                hit_write: false,
                hit_flop: false,
                miss_mask: 0,
            }; MAX_FUSED_FOLDS],
            n_folds: fu.folds.len(),
            idx,
            needs_u_idx: false,
            use_lanes,
            lane_k: 0,
        };
        for (i, ld) in fu.loads.iter().enumerate() {
            body.loads[i] = match ld {
                FLoad::Val => RLoad::Val,
                FLoad::Probe { tensor, set_miss } => {
                    RLoad::Probe { tensor: *tensor, set_miss: *set_miss }
                }
                FLoad::Dense { tensor, base, stride } => RLoad::Dense {
                    slice: self.dense[*tensor],
                    base: offset(self.u, base),
                    stride: *stride,
                },
                FLoad::Gather { tensor, id, modes, var_mode, set_miss } => {
                    body.needs_u_idx |= var_mode.is_none();
                    RLoad::Gather {
                        tensor: *tensor,
                        id: *id,
                        modes,
                        var_mode: *var_mode,
                        set_miss: *set_miss,
                    }
                }
            };
        }
        let single_fold = fu.folds.len() == 1;
        for (j, fold) in fu.folds.iter().enumerate() {
            let rf = &mut body.folds[j];
            for op in fold.srcs.iter() {
                match op {
                    FOp::Reg(r) if rf.n_srcs == 0 => {
                        // Still in the leading invariant run: pre-fold.
                        let v = self.f[*r];
                        rf.lead = if rf.has_lead { fold.bin.apply(rf.lead, v) } else { v };
                        rf.has_lead = true;
                    }
                    FOp::Reg(r) => {
                        rf.srcs[rf.n_srcs] = RSrc::Const(self.f[*r]);
                        rf.n_srcs += 1;
                    }
                    FOp::Local(l) => {
                        rf.srcs[rf.n_srcs] = RSrc::Local(*l);
                        rf.n_srcs += 1;
                    }
                }
            }
            rf.acc = match &fold.acc {
                FAcc::Scalar { slot } => RAcc::Slot { slot: *slot },
                FAcc::Out { tensor, base, stride } => {
                    let ord = self.oo[*tensor];
                    let off = offset(self.u, base);
                    if *stride == 0 && single_fold {
                        RAcc::Cell { ord, off }
                    } else {
                        RAcc::Out { ord, off, stride: *stride }
                    }
                }
            };
            rf.accv = match rf.acc {
                RAcc::Slot { slot } => self.f[slot],
                RAcc::Cell { ord, off } => {
                    let ob = self.outs[ord].as_ref().expect("output bound");
                    ob.data[off - ob.base]
                }
                RAcc::Out { .. } => 0.0,
            };
            rf.lanev = [fold.op.identity().unwrap_or(0.0); LANES];
            rf.bin = fold.bin;
            rf.op = fold.op;
            rf.check_miss = fold.check_miss;
            rf.hit_write = fold.check_miss && matches!(fold.acc, FAcc::Out { .. });
            rf.hit_flop = fold.check_miss && fold.op != AssignOp::Overwrite;
            rf.miss_mask = fold.miss.iter().fold(0u32, |m, &l| m | (1 << l));
        }
        body
    }

    /// Shape dispatch for the generic fused loop: the common small
    /// (loads, folds) shapes — `Jam` bodies in particular — get
    /// per-shape unrolled instantiations of [`Self::drive`] whose inner
    /// loops have compile-time trip counts; `(0, 0)` is the dynamic
    /// fallback for everything else.
    fn drive_shape<S: Semi, const COUNT: bool>(
        &mut self,
        body: &mut RBody<'a, '_>,
        s: S,
        drive: FDrive<'a>,
    ) {
        match (body.n_loads, body.n_folds) {
            (2, 1) => self.drive::<S, COUNT, 2, 1>(body, s, drive),
            (3, 2) => self.drive::<S, COUNT, 3, 2>(body, s, drive),
            (4, 3) => self.drive::<S, COUNT, 4, 3>(body, s, drive),
            (5, 4) => self.drive::<S, COUNT, 5, 4>(body, s, drive),
            _ => self.drive::<S, COUNT, 0, 0>(body, s, drive),
        }
    }

    /// Drives the body over the loop's coordinates. `NL` / `NF` pin the
    /// load and fold counts at compile time (0 = read them from the
    /// body at runtime).
    fn drive<S: Semi, const COUNT: bool, const NL: usize, const NF: usize>(
        &mut self,
        body: &mut RBody<'a, '_>,
        s: S,
        drive: FDrive<'a>,
    ) {
        match drive {
            FDrive::Range { lo, hi } => {
                for c in lo..=hi {
                    self.coord::<S, COUNT, NL, NF>(body, s, c, None, None);
                }
                self.u[body.idx] = hi;
            }
            FDrive::Crd { vals, crd, start, stop } => {
                for (pos, &c) in crd.iter().enumerate().take(stop).skip(start) {
                    self.coord::<S, COUNT, NL, NF>(body, s, c, Some((vals, pos)), None);
                }
                self.u[body.idx] = crd[stop - 1];
            }
            FDrive::Rle { vals, run_start, run_end, start, stop, lo, hi } => {
                let mut last = lo;
                for r in start..stop {
                    let c_lo = run_start[r].max(lo);
                    if c_lo > hi {
                        break;
                    }
                    let c_hi = run_end[r].min(hi);
                    for c in c_lo..=c_hi {
                        self.coord::<S, COUNT, NL, NF>(body, s, c, Some((vals, r)), None);
                    }
                    last = c_hi;
                }
                self.u[body.idx] = last;
            }
            FDrive::Isect { vals, crd, start, stop, bvals, mut probe } => {
                for (pos, &c) in crd.iter().enumerate().take(stop).skip(start) {
                    let pmatch = probe.find(c);
                    self.coord::<S, COUNT, NL, NF>(
                        body,
                        s,
                        c,
                        Some((vals, pos)),
                        Some((bvals, pmatch)),
                    );
                }
                self.u[body.idx] = crd[stop - 1];
            }
        }
    }

    /// Executes the body for one coordinate (the generic fused path:
    /// loads once into locals, then the straight-line folds).
    #[inline(always)]
    fn coord<S: Semi, const COUNT: bool, const NL: usize, const NF: usize>(
        &mut self,
        body: &mut RBody<'a, '_>,
        s: S,
        coord: usize,
        leaf: Option<(&'a [f64], usize)>,
        probe: Option<(&'a [f64], Option<usize>)>,
    ) {
        if body.needs_u_idx {
            self.u[body.idx] = coord;
        }
        let n_loads = if NL == 0 { body.n_loads } else { NL };
        let n_folds = if NF == 0 { body.n_folds } else { NF };
        let use_lanes = body.use_lanes;
        let lane_k = body.lane_k;
        let mut locals = [0f64; MAX_FUSED_LOADS];
        let mut miss: u32 = 0;
        for (i, ld) in body.loads[..n_loads].iter().enumerate() {
            match *ld {
                RLoad::Val => {
                    let (v, pos) = leaf.expect("driver value in a driven fused loop");
                    locals[i] = v[pos];
                }
                RLoad::Dense { slice, base, stride } => {
                    locals[i] = slice[base + coord * stride];
                }
                RLoad::Probe { tensor, set_miss } => {
                    let (pv, pmatch) = probe.expect("probe value in an intersection loop");
                    match pmatch {
                        Some(p) => {
                            locals[i] = pv[p];
                            if COUNT {
                                self.reads[tensor] += 1;
                            }
                        }
                        None => {
                            locals[i] = 0.0;
                            miss |= u32::from(set_miss) << i;
                        }
                    }
                }
                RLoad::Gather { tensor, id, modes, var_mode, set_miss } => {
                    let found = gather_find(
                        self.levels,
                        self.lvl_base,
                        self.u,
                        self.gathers,
                        tensor,
                        id,
                        modes,
                        var_mode,
                        coord,
                    );
                    match found {
                        Some(p) => {
                            locals[i] = self.vals[tensor][p];
                            if COUNT {
                                self.reads[tensor] += 1;
                            }
                        }
                        None => {
                            locals[i] = 0.0;
                            miss |= u32::from(set_miss) << i;
                        }
                    }
                }
            }
        }
        for fold in body.folds[..n_folds].iter_mut() {
            let mut k = 0usize;
            let mut v = if fold.has_lead {
                fold.lead
            } else {
                k = 1;
                src_val(fold.srcs[0], &locals)
            };
            while k < fold.n_srcs {
                v = s.bin(fold.bin, v, src_val(fold.srcs[k], &locals));
                k += 1;
            }
            if !(fold.check_miss && (miss & fold.miss_mask) != 0) {
                match fold.acc {
                    RAcc::Slot { .. } | RAcc::Cell { .. } => {
                        // Under lane mode, register-held reductions go
                        // through the per-coordinate lane instead of the
                        // loop-carried scalar — breaking the serial FP
                        // dependency chain. Elementwise stores below are
                        // untouched (distinct cells, original order).
                        if use_lanes {
                            fold.lanev[lane_k] = s.red(fold.op, fold.lanev[lane_k], v);
                        } else {
                            fold.accv = s.red(fold.op, fold.accv, v);
                        }
                    }
                    RAcc::Out { ord, off, stride } => {
                        let ob = self.outs[ord].as_mut().expect("output bound");
                        let cell = &mut ob.data[off + coord * stride - ob.base];
                        *cell = s.red(fold.op, *cell, v);
                    }
                }
                if COUNT {
                    self.writes += u64::from(fold.hit_write);
                    self.flops += u64::from(fold.hit_flop);
                }
            }
        }
        if use_lanes {
            body.lane_k = (lane_k + 1) & (LANES - 1);
        }
    }

    /// Closed-form loops for the canonical dot / dot-axpy shapes,
    /// running straight off the compile-time [`Fused`] form (no operand
    /// arrays, accumulators and operands pinned in machine registers).
    /// Returns `false` when the shape or drive doesn't match — the
    /// generic fused path then runs.
    #[inline]
    fn run_special<const COUNT: bool>(
        &mut self,
        fu: &Fused,
        drive: &FDrive<'a>,
        idx: usize,
        lanes: bool,
    ) -> bool {
        match (fu.kind, fu.folds.as_ref()) {
            (FusedBody::Dot, [fold]) => {
                self.special_dot::<COUNT>(fold, &fu.loads, drive, idx, lanes)
            }
            (FusedBody::DotAxpy, [dot, axpy]) => {
                self.special_dot_axpy::<COUNT>(dot, axpy, &fu.loads, drive, idx, lanes)
            }
            _ => false,
        }
    }

    /// `acc ∘= [lead ∘] a [∘ mid] ∘ b` where `a` is the driver value
    /// and `b` a strided dense element (SpMV/SYPRD row dots) or the
    /// probed value (SSYRK's intersection dot), with the accumulator in
    /// a machine register for the whole loop.
    #[inline]
    fn special_dot<const COUNT: bool>(
        &mut self,
        fold: &FFold,
        loads: &[FLoad],
        drive: &FDrive<'a>,
        idx: usize,
        lanes: bool,
    ) -> bool {
        if loads.len() != 2 {
            return false;
        }
        let Some((lead, a, mid, b)) = split_dot(self.f, fold) else {
            return false;
        };
        if a == b || !matches!(loads[a], FLoad::Val) {
            return false;
        }
        // Register-held accumulator: a scalar slot or an invariant cell.
        let cell = match &fold.acc {
            FAcc::Scalar { .. } => None,
            FAcc::Out { tensor, base, stride: 0 } => Some((self.oo[*tensor], offset(self.u, base))),
            FAcc::Out { .. } => return false,
        };
        let acc0 = match (&fold.acc, cell) {
            (FAcc::Scalar { slot }, _) => self.f[*slot],
            (_, Some((ord, off))) => {
                let ob = self.outs[ord].as_ref().expect("output bound");
                ob.data[off - ob.base]
            }
            _ => unreachable!(),
        };
        let (bin, op) = (fold.bin, fold.op);
        // Lane mode applies when the fold's reduction has an identity
        // to seed the lanes with (always true for the proven-uniform
        // semirings; checked for the dynamic fallback).
        let lane_ident = if lanes { op.identity() } else { None };
        let acc = match &loads[b] {
            FLoad::Dense { tensor, base, stride } if !fold.check_miss => {
                let xs = self.dense[*tensor];
                let xb = offset(self.u, base);
                let xst = *stride;
                match *drive {
                    FDrive::Crd { vals, crd, start, stop } => {
                        let (crd, avals) = (&crd[start..stop], &vals[start..stop]);
                        let acc = dot_crd_dispatch(
                            bin, op, lane_ident, lead, mid, acc0, crd, avals, xs, xb, xst,
                        );
                        self.u[idx] = crd[crd.len() - 1];
                        acc
                    }
                    FDrive::Rle { vals, run_start, run_end, start, stop, lo, hi } => {
                        let args = RleArgs { vals, run_start, run_end, start, stop, lo, hi };
                        let (acc, last) = dot_rle_dispatch(
                            bin, op, lane_ident, lead, mid, acc0, &args, xs, xb, xst,
                        );
                        self.u[idx] = last;
                        acc
                    }
                    _ => return false,
                }
            }
            FLoad::Probe { tensor: pt, set_miss: true }
                if fold.check_miss && fold.miss.as_ref() == [b] =>
            {
                let FDrive::Isect { vals, crd, start, stop, bvals, probe } = *drive else {
                    return false;
                };
                let (crd, avals) = (&crd[start..stop], &vals[start..stop]);
                let (acc, hits) = isect_dot_dispatch(
                    bin, op, lane_ident, lead, mid, acc0, crd, avals, bvals, probe,
                );
                if COUNT {
                    // Per hit: one probe read plus the store side of the
                    // miss-checked fold.
                    self.reads[*pt] += hits;
                    if op != AssignOp::Overwrite {
                        self.flops += hits;
                    }
                    if matches!(fold.acc, FAcc::Out { .. }) {
                        self.writes += hits;
                    }
                }
                self.u[idx] = crd[crd.len() - 1];
                acc
            }
            _ => return false,
        };
        match (&fold.acc, cell) {
            (FAcc::Scalar { slot }, _) => self.f[*slot] = acc,
            (_, Some((ord, off))) => {
                let ob = self.outs[ord].as_mut().expect("output bound");
                let i = off - ob.base;
                ob.data[i] = acc;
            }
            _ => unreachable!(),
        }
        true
    }

    /// SSYMV's symmetric pair over a compressed or run-length driver:
    /// a register-held scalar dot plus a strided reducing store,
    /// sharing the driver value (`w ∘= a ∘ x[c]; y[c] ∘= a ∘ k`).
    fn special_dot_axpy<const COUNT: bool>(
        &mut self,
        dot: &FFold,
        axpy: &FFold,
        loads: &[FLoad],
        drive: &FDrive<'a>,
        idx: usize,
        lanes: bool,
    ) -> bool {
        if !matches!(drive, FDrive::Crd { .. } | FDrive::Rle { .. }) {
            return false;
        }
        if loads.len() != 2 || dot.check_miss || axpy.check_miss {
            return false;
        }
        let Some((None, a, None, b)) = split_dot(self.f, dot) else {
            return false;
        };
        if a == b || !matches!(loads[a], FLoad::Val) {
            return false;
        }
        let FLoad::Dense { tensor: xt, base: xbase, stride: xst } = &loads[b] else {
            return false;
        };
        let FAcc::Scalar { slot } = dot.acc else {
            return false;
        };
        // The axpy side: driver value times one invariant register.
        let (k, k_first) = match axpy.srcs.as_ref() {
            [FOp::Local(l), FOp::Reg(r)] if *l == a => (self.f[*r], false),
            [FOp::Reg(r), FOp::Local(l)] if *l == a => (self.f[*r], true),
            _ => return false,
        };
        let FAcc::Out { tensor: ot, base: obase, stride: ost } = &axpy.acc else {
            return false;
        };
        let xs = self.dense[*xt];
        let xb = offset(self.u, xbase);
        let ooff = offset(self.u, obase);
        let ord = self.oo[*ot];
        let ob = self.outs[ord].as_mut().expect("output bound");
        let acc0 = self.f[slot];
        // Only the dot side is register-held, so only its reduction
        // needs an identity for lane mode; the axpy stores stay
        // elementwise in original order either way.
        let lane_ident = if lanes { dot.op.identity() } else { None };
        let uniform = dot.bin == axpy.bin && dot.op == axpy.op;
        match *drive {
            FDrive::Crd { vals, crd, start, stop } => {
                let args = DotAxpyArgs {
                    k,
                    k_first,
                    crd: &crd[start..stop],
                    avals: &vals[start..stop],
                    xs,
                    xb,
                    xst: *xst,
                    ooff,
                    ob_base: ob.base,
                    ost: *ost,
                };
                let acc = match (uniform, dot.bin, dot.op) {
                    (true, BinOp::Mul, AssignOp::Add) => {
                        dot_axpy_dispatch(MulAddSemi, dot, axpy, lane_ident, acc0, &args, ob.data)
                    }
                    (true, BinOp::Add, AssignOp::Min) => {
                        dot_axpy_dispatch(AddMinSemi, dot, axpy, lane_ident, acc0, &args, ob.data)
                    }
                    _ => dot_axpy_dispatch(DynSemi, dot, axpy, lane_ident, acc0, &args, ob.data),
                };
                self.f[slot] = acc;
                self.u[idx] = crd[stop - 1];
            }
            FDrive::Rle { vals, run_start, run_end, start, stop, lo, hi } => {
                let args = DotAxpyRleArgs {
                    k,
                    k_first,
                    rle: RleArgs { vals, run_start, run_end, start, stop, lo, hi },
                    xs,
                    xb,
                    xst: *xst,
                    ooff,
                    ob_base: ob.base,
                    ost: *ost,
                };
                let (acc, last) = match (uniform, dot.bin, dot.op) {
                    (true, BinOp::Mul, AssignOp::Add) => dot_axpy_rle_dispatch(
                        MulAddSemi, dot, axpy, lane_ident, acc0, &args, ob.data,
                    ),
                    (true, BinOp::Add, AssignOp::Min) => dot_axpy_rle_dispatch(
                        AddMinSemi, dot, axpy, lane_ident, acc0, &args, ob.data,
                    ),
                    _ => {
                        dot_axpy_rle_dispatch(DynSemi, dot, axpy, lane_ident, acc0, &args, ob.data)
                    }
                };
                self.f[slot] = acc;
                self.u[idx] = last;
            }
            _ => unreachable!("drive shape checked above"),
        }
        true
    }
}

/// Splits a fold's operand list into the canonical dot chain
/// `[lead regs..., Local(a), (Reg mid)?, Local(b)]`, snapshotting (and
/// pre-folding) the invariant registers. `None` = some other shape.
#[inline]
fn split_dot(f: &[f64], fold: &FFold) -> Option<(Option<f64>, usize, Option<f64>, usize)> {
    let mut srcs = fold.srcs.iter();
    let mut lead: Option<f64> = None;
    let a = loop {
        match srcs.next()? {
            FOp::Reg(r) => {
                let v = f[*r];
                lead = Some(match lead {
                    None => v,
                    Some(l) => fold.bin.apply(l, v),
                });
            }
            FOp::Local(l) => break *l,
        }
    };
    let (mid, b) = match srcs.next()? {
        FOp::Reg(r) => {
            let FOp::Local(l) = srcs.next()? else {
                return None;
            };
            (Some(f[*r]), *l)
        }
        FOp::Local(l) => (None, *l),
    };
    if srcs.next().is_some() {
        return None;
    }
    Some((lead, a, mid, b))
}

/// One element of the dot chain: `red(acc, ([lead ∘] a [∘ mid]) ∘ b)`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dot_chain<S: Semi>(
    s: S,
    bin: BinOp,
    op: AssignOp,
    acc: f64,
    lead: Option<f64>,
    a: f64,
    mid: Option<f64>,
    b: f64,
) -> f64 {
    let v = chain_prefix(s, bin, lead, a, mid);
    s.red(op, acc, s.bin(bin, v, b))
}

/// Dot over a compressed driver window (strict left-to-right scalar
/// accumulation — [`LaneMode::Scalar`]).
#[allow(clippy::too_many_arguments)]
fn dot_crd<S: Semi>(
    s: S,
    bin: BinOp,
    op: AssignOp,
    lead: Option<f64>,
    mid: Option<f64>,
    acc0: f64,
    crd: &[usize],
    avals: &[f64],
    xs: &[f64],
    xb: usize,
    xst: usize,
) -> f64 {
    let mut acc = acc0;
    for (&c, &a) in crd.iter().zip(avals) {
        acc = dot_chain(s, bin, op, acc, lead, a, mid, xs[xb + c * xst]);
    }
    acc
}

/// Lane-mode dot over a compressed driver window: element `k` of the
/// window reduces into lane `k % LANES`; the chunked main loop is the
/// straight-line shape the autovectorizer keeps in vector registers,
/// the remainder continues from lane 0 (window length mod `LANES`
/// elements, so lane assignment stays position-pure).
#[allow(clippy::too_many_arguments)]
fn dot_crd_lanes<S: Semi>(
    s: S,
    bin: BinOp,
    op: AssignOp,
    ident: f64,
    lead: Option<f64>,
    mid: Option<f64>,
    acc0: f64,
    crd: &[usize],
    avals: &[f64],
    xs: &[f64],
    xb: usize,
    xst: usize,
) -> f64 {
    let mut lanes = [ident; LANES];
    let n = crd.len().min(avals.len());
    // Fixed-size chunk references (`&[T; LANES]`) let the per-element
    // bounds checks fold away; the gather into `xs` is the one load the
    // optimizer still has to check.
    let mut base = 0;
    while base + LANES <= n {
        let c8: &[usize; LANES] = crd[base..base + LANES].try_into().expect("exact chunk");
        let a8: &[f64; LANES] = avals[base..base + LANES].try_into().expect("exact chunk");
        let va: [f64; LANES] = std::array::from_fn(|k| chain_prefix(s, bin, lead, a8[k], mid));
        let xa: [f64; LANES] = std::array::from_fn(|k| xs[xb + c8[k] * xst]);
        lane_accumulate(s, bin, op, &mut lanes, va, xa);
        base += LANES;
    }
    for (k, p) in (base..n).enumerate() {
        lanes[k] = dot_chain(s, bin, op, lanes[k], lead, avals[p], mid, xs[xb + crd[p] * xst]);
    }
    lane_merge(s, op, acc0, &lanes)
}

/// Selects the semiring instantiation and lane/scalar variant of the
/// compressed-driver dot. `lane_ident` is the lane seed under
/// [`LaneMode::Lanes`] (`None` = scalar accumulation); windows shorter
/// than [`LANE_MIN`] fold serially even in lane mode.
#[allow(clippy::too_many_arguments)]
fn dot_crd_dispatch(
    bin: BinOp,
    op: AssignOp,
    lane_ident: Option<f64>,
    lead: Option<f64>,
    mid: Option<f64>,
    acc0: f64,
    crd: &[usize],
    avals: &[f64],
    xs: &[f64],
    xb: usize,
    xst: usize,
) -> f64 {
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn go<S: Semi>(
        s: S,
        bin: BinOp,
        op: AssignOp,
        lane_ident: Option<f64>,
        lead: Option<f64>,
        mid: Option<f64>,
        acc0: f64,
        crd: &[usize],
        avals: &[f64],
        xs: &[f64],
        xb: usize,
        xst: usize,
    ) -> f64 {
        match lane_ident {
            Some(id) if crd.len() > LANE_MIN => {
                dot_crd_lanes(s, bin, op, id, lead, mid, acc0, crd, avals, xs, xb, xst)
            }
            _ => dot_crd(s, bin, op, lead, mid, acc0, crd, avals, xs, xb, xst),
        }
    }
    match (bin, op) {
        (BinOp::Mul, AssignOp::Add) => {
            go(MulAddSemi, bin, op, lane_ident, lead, mid, acc0, crd, avals, xs, xb, xst)
        }
        (BinOp::Add, AssignOp::Min) => {
            go(AddMinSemi, bin, op, lane_ident, lead, mid, acc0, crd, avals, xs, xb, xst)
        }
        _ => go(DynSemi, bin, op, lane_ident, lead, mid, acc0, crd, avals, xs, xb, xst),
    }
}

/// The run-length drive window (bundled to keep signatures readable).
struct RleArgs<'a> {
    vals: &'a [f64],
    run_start: &'a [usize],
    run_end: &'a [usize],
    start: usize,
    stop: usize,
    lo: usize,
    hi: usize,
}

impl RleArgs<'_> {
    /// See [`rle_extent`] — the lane cutover measure for this window.
    fn extent(&self) -> usize {
        rle_extent(self.run_start, self.run_end, self.start, self.stop, self.lo, self.hi)
    }
}

/// Dot over a run-length driver window: the driver value is constant
/// per run, so its chain prefix hoists out of the inner strided loop.
/// Strict left-to-right scalar accumulation ([`LaneMode::Scalar`]).
#[allow(clippy::too_many_arguments)]
fn dot_rle<S: Semi>(
    s: S,
    bin: BinOp,
    op: AssignOp,
    lead: Option<f64>,
    mid: Option<f64>,
    acc0: f64,
    args: &RleArgs<'_>,
    xs: &[f64],
    xb: usize,
    xst: usize,
) -> (f64, usize) {
    let mut acc = acc0;
    let mut last = args.lo;
    for r in args.start..args.stop {
        let c_lo = args.run_start[r].max(args.lo);
        if c_lo > args.hi {
            break;
        }
        let c_hi = args.run_end[r].min(args.hi);
        let v = chain_prefix(s, bin, lead, args.vals[r], mid);
        for c in c_lo..=c_hi {
            acc = s.red(op, acc, s.bin(bin, v, xs[xb + c * xst]));
        }
        last = c_hi;
    }
    (acc, last)
}

/// Lane-mode dot over a run-length driver window: within each clamped
/// run, offset `d` from the run's clamped start reduces into lane
/// `d % LANES` (the hoisted run value broadcast across the chunk), so
/// the lane assignment depends only on the clamped run layout.
#[allow(clippy::too_many_arguments)]
fn dot_rle_lanes<S: Semi>(
    s: S,
    bin: BinOp,
    op: AssignOp,
    ident: f64,
    lead: Option<f64>,
    mid: Option<f64>,
    acc0: f64,
    args: &RleArgs<'_>,
    xs: &[f64],
    xb: usize,
    xst: usize,
) -> (f64, usize) {
    let mut lanes = [ident; LANES];
    let mut last = args.lo;
    for r in args.start..args.stop {
        let c_lo = args.run_start[r].max(args.lo);
        if c_lo > args.hi {
            break;
        }
        let c_hi = args.run_end[r].min(args.hi);
        let v = chain_prefix(s, bin, lead, args.vals[r], mid);
        let va = [v; LANES];
        let mut c = c_lo;
        while c + LANES <= c_hi + 1 {
            // Unit stride reads a contiguous chunk — the one laned load
            // the optimizer can turn into straight vector loads.
            let xa: [f64; LANES] = if xst == 1 {
                *<&[f64; LANES]>::try_from(&xs[xb + c..xb + c + LANES]).expect("exact chunk")
            } else {
                std::array::from_fn(|k| xs[xb + (c + k) * xst])
            };
            lane_accumulate(s, bin, op, &mut lanes, va, xa);
            c += LANES;
        }
        let mut k = 0usize;
        while c <= c_hi {
            lanes[k] = s.red(op, lanes[k], s.bin(bin, v, xs[xb + c * xst]));
            k += 1;
            c += 1;
        }
        last = c_hi;
    }
    (lane_merge(s, op, acc0, &lanes), last)
}

/// Selects the semiring instantiation and lane/scalar variant of the
/// run-length dot (see [`dot_crd_dispatch`]).
#[allow(clippy::too_many_arguments)]
fn dot_rle_dispatch(
    bin: BinOp,
    op: AssignOp,
    lane_ident: Option<f64>,
    lead: Option<f64>,
    mid: Option<f64>,
    acc0: f64,
    args: &RleArgs<'_>,
    xs: &[f64],
    xb: usize,
    xst: usize,
) -> (f64, usize) {
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn go<S: Semi>(
        s: S,
        bin: BinOp,
        op: AssignOp,
        lane_ident: Option<f64>,
        lead: Option<f64>,
        mid: Option<f64>,
        acc0: f64,
        args: &RleArgs<'_>,
        xs: &[f64],
        xb: usize,
        xst: usize,
    ) -> (f64, usize) {
        // The run extent bounds the element count from above; runs
        // sparser than the extent still fold fast in the lane kernel.
        match lane_ident {
            Some(id) if args.extent() > LANE_MIN => {
                dot_rle_lanes(s, bin, op, id, lead, mid, acc0, args, xs, xb, xst)
            }
            _ => dot_rle(s, bin, op, lead, mid, acc0, args, xs, xb, xst),
        }
    }
    match (bin, op) {
        (BinOp::Mul, AssignOp::Add) => {
            go(MulAddSemi, bin, op, lane_ident, lead, mid, acc0, args, xs, xb, xst)
        }
        (BinOp::Add, AssignOp::Min) => {
            go(AddMinSemi, bin, op, lane_ident, lead, mid, acc0, args, xs, xb, xst)
        }
        _ => go(DynSemi, bin, op, lane_ident, lead, mid, acc0, args, xs, xb, xst),
    }
}

/// Intersection dot: the driver window merged against the probed fiber
/// with a forward-only cursor; on a miss the fold's value is unused and
/// the store skipped, so the merge skips computing it without changing
/// any state. Returns the accumulator and the hit count (for per-hit
/// probe-read / store-side accounting). Strict left-to-right scalar
/// accumulation ([`LaneMode::Scalar`]).
#[allow(clippy::too_many_arguments)]
fn isect_dot<S: Semi>(
    s: S,
    bin: BinOp,
    op: AssignOp,
    lead: Option<f64>,
    mid: Option<f64>,
    acc0: f64,
    crd: &[usize],
    avals: &[f64],
    bvals: &[f64],
    mut probe: ProbeCur<'_>,
) -> (f64, u64) {
    let mut acc = acc0;
    let mut hits = 0u64;
    for (&c, &a) in crd.iter().zip(avals) {
        if let Some(p) = probe.find(c) {
            acc = dot_chain(s, bin, op, acc, lead, a, mid, bvals[p]);
            hits += 1;
        }
    }
    (acc, hits)
}

/// Lane-mode intersection dot: driver position `p` reduces into lane
/// `p % LANES` — a pure function of the driver window, independent of
/// where misses fall (a missed position simply leaves its lane
/// untouched that round). Position-keyed lanes keep the chunked loop's
/// lane indices compile-time constants, so the accumulators live in
/// registers even though hits are data-dependent. Dispatched only for
/// dense probes, where hits are the common case (see
/// [`isect_dot_dispatch`]).
#[allow(clippy::too_many_arguments)]
fn isect_dot_lanes<S: Semi>(
    s: S,
    bin: BinOp,
    op: AssignOp,
    ident: f64,
    lead: Option<f64>,
    mid: Option<f64>,
    acc0: f64,
    crd: &[usize],
    avals: &[f64],
    bvals: &[f64],
    mut probe: ProbeCur<'_>,
) -> (f64, u64) {
    let mut lanes = [ident; LANES];
    let mut hits = 0u64;
    let n = crd.len().min(avals.len());
    let mut base = 0;
    while base + LANES <= n {
        let c8: &[usize; LANES] = crd[base..base + LANES].try_into().expect("exact chunk");
        let a8: &[f64; LANES] = avals[base..base + LANES].try_into().expect("exact chunk");
        for k in 0..LANES {
            if let Some(p) = probe.find(c8[k]) {
                lanes[k] = dot_chain(s, bin, op, lanes[k], lead, a8[k], mid, bvals[p]);
                hits += 1;
            }
        }
        base += LANES;
    }
    for (k, p) in (base..n).enumerate() {
        if let Some(q) = probe.find(crd[p]) {
            lanes[k] = dot_chain(s, bin, op, lanes[k], lead, avals[p], mid, bvals[q]);
            hits += 1;
        }
    }
    (lane_merge(s, op, acc0, &lanes), hits)
}

/// Selects the semiring instantiation and lane/scalar variant of the
/// intersection dot (see [`dot_crd_dispatch`]).
#[allow(clippy::too_many_arguments)]
fn isect_dot_dispatch(
    bin: BinOp,
    op: AssignOp,
    lane_ident: Option<f64>,
    lead: Option<f64>,
    mid: Option<f64>,
    acc0: f64,
    crd: &[usize],
    avals: &[f64],
    bvals: &[f64],
    probe: ProbeCur<'_>,
) -> (f64, u64) {
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn go<S: Semi>(
        s: S,
        bin: BinOp,
        op: AssignOp,
        lane_ident: Option<f64>,
        lead: Option<f64>,
        mid: Option<f64>,
        acc0: f64,
        crd: &[usize],
        avals: &[f64],
        bvals: &[f64],
        probe: ProbeCur<'_>,
    ) -> (f64, u64) {
        // Lanes pay off only when the probe is a constant-time dense
        // index (near-every position hits, so the fold chain is what's
        // on the critical path). Against galloping compressed or
        // run-walking probes the serial cursor advance dominates and
        // hits are sparse — the lane merge is pure tax there (measured
        // ~10% loss on SSYRK), so those fold serially. The gate is a
        // pure function of the probed level's format: deterministic.
        match (lane_ident, probe) {
            (Some(id), ProbeCur::Dense { .. }) if crd.len() > LANE_MIN => {
                isect_dot_lanes(s, bin, op, id, lead, mid, acc0, crd, avals, bvals, probe)
            }
            _ => isect_dot(s, bin, op, lead, mid, acc0, crd, avals, bvals, probe),
        }
    }
    match (bin, op) {
        (BinOp::Mul, AssignOp::Add) => {
            go(MulAddSemi, bin, op, lane_ident, lead, mid, acc0, crd, avals, bvals, probe)
        }
        (BinOp::Add, AssignOp::Min) => {
            go(AddMinSemi, bin, op, lane_ident, lead, mid, acc0, crd, avals, bvals, probe)
        }
        _ => go(DynSemi, bin, op, lane_ident, lead, mid, acc0, crd, avals, bvals, probe),
    }
}

/// The dot-axpy drive window (bundled to keep signatures readable).
struct DotAxpyArgs<'a> {
    k: f64,
    k_first: bool,
    crd: &'a [usize],
    avals: &'a [f64],
    xs: &'a [f64],
    xb: usize,
    xst: usize,
    ooff: usize,
    ob_base: usize,
    ost: usize,
}

/// The symmetric dot + axpy pair over a compressed driver window.
/// Strict left-to-right scalar accumulation ([`LaneMode::Scalar`]).
fn dot_axpy_crd<S: Semi>(
    s: S,
    dot: &FFold,
    axpy: &FFold,
    acc0: f64,
    args: &DotAxpyArgs<'_>,
    data: &mut [f64],
) -> f64 {
    let mut acc = acc0;
    for (&c, &a) in args.crd.iter().zip(args.avals) {
        acc = s.red(dot.op, acc, s.bin(dot.bin, a, args.xs[args.xb + c * args.xst]));
        let v = if args.k_first { s.bin(axpy.bin, args.k, a) } else { s.bin(axpy.bin, a, args.k) };
        let cell = &mut data[args.ooff + c * args.ost - args.ob_base];
        *cell = s.red(axpy.op, *cell, v);
    }
    acc
}

/// Lane-mode dot + axpy: the dot side lanes by window position
/// (element `p` → lane `p % LANES`); the axpy side keeps its
/// per-element stores in original order (the scattered cells are
/// distinct — driver coordinates are strictly increasing — so store
/// order carries no FP dependency anyway).
fn dot_axpy_crd_lanes<S: Semi>(
    s: S,
    dot: &FFold,
    axpy: &FFold,
    ident: f64,
    acc0: f64,
    args: &DotAxpyArgs<'_>,
    data: &mut [f64],
) -> f64 {
    let mut lanes = [ident; LANES];
    let n = args.crd.len().min(args.avals.len());
    // Chunked so `lanes[k]` is a compile-time index (register-resident
    // accumulators); element `base + k` lands in lane `k`, the same
    // position-pure `p % LANES` assignment as the remainder loop.
    let mut base = 0;
    while base + LANES <= n {
        let c8: &[usize; LANES] = args.crd[base..base + LANES].try_into().expect("exact chunk");
        let a8: &[f64; LANES] = args.avals[base..base + LANES].try_into().expect("exact chunk");
        for k in 0..LANES {
            let (c, a) = (c8[k], a8[k]);
            lanes[k] = s.red(dot.op, lanes[k], s.bin(dot.bin, a, args.xs[args.xb + c * args.xst]));
            let v =
                if args.k_first { s.bin(axpy.bin, args.k, a) } else { s.bin(axpy.bin, a, args.k) };
            let cell = &mut data[args.ooff + c * args.ost - args.ob_base];
            *cell = s.red(axpy.op, *cell, v);
        }
        base += LANES;
    }
    for (k, p) in (base..n).enumerate() {
        let (c, a) = (args.crd[p], args.avals[p]);
        lanes[k] = s.red(dot.op, lanes[k], s.bin(dot.bin, a, args.xs[args.xb + c * args.xst]));
        let v = if args.k_first { s.bin(axpy.bin, args.k, a) } else { s.bin(axpy.bin, a, args.k) };
        let cell = &mut data[args.ooff + c * args.ost - args.ob_base];
        *cell = s.red(axpy.op, *cell, v);
    }
    lane_merge(s, dot.op, acc0, &lanes)
}

/// Selects the lane/scalar variant of the dot + axpy pair (the
/// semiring is already chosen at the call site).
fn dot_axpy_dispatch<S: Semi>(
    s: S,
    dot: &FFold,
    axpy: &FFold,
    lane_ident: Option<f64>,
    acc0: f64,
    args: &DotAxpyArgs<'_>,
    data: &mut [f64],
) -> f64 {
    match lane_ident {
        Some(id) if args.crd.len() > LANE_MIN => {
            dot_axpy_crd_lanes(s, dot, axpy, id, acc0, args, data)
        }
        _ => dot_axpy_crd(s, dot, axpy, acc0, args, data),
    }
}

/// The run-length dot + axpy window: the compressed-driver bundle's
/// scalars plus the clamped run layout.
struct DotAxpyRleArgs<'a> {
    k: f64,
    k_first: bool,
    rle: RleArgs<'a>,
    xs: &'a [f64],
    xb: usize,
    xst: usize,
    ooff: usize,
    ob_base: usize,
    ost: usize,
}

/// The symmetric dot + axpy pair over a run-length driver: both sides
/// share the run's constant driver value, so the axpy contribution
/// (`a ∘ k`) hoists out of the inner loop entirely. Strict
/// left-to-right scalar accumulation ([`LaneMode::Scalar`]).
fn dot_axpy_rle<S: Semi>(
    s: S,
    dot: &FFold,
    axpy: &FFold,
    acc0: f64,
    args: &DotAxpyRleArgs<'_>,
    data: &mut [f64],
) -> (f64, usize) {
    let r = &args.rle;
    let mut acc = acc0;
    let mut last = r.lo;
    for run in r.start..r.stop {
        let c_lo = r.run_start[run].max(r.lo);
        if c_lo > r.hi {
            break;
        }
        let c_hi = r.run_end[run].min(r.hi);
        let a = r.vals[run];
        let v = if args.k_first { s.bin(axpy.bin, args.k, a) } else { s.bin(axpy.bin, a, args.k) };
        for c in c_lo..=c_hi {
            acc = s.red(dot.op, acc, s.bin(dot.bin, a, args.xs[args.xb + c * args.xst]));
            let cell = &mut data[args.ooff + c * args.ost - args.ob_base];
            *cell = s.red(axpy.op, *cell, v);
        }
        last = c_hi;
    }
    (acc, last)
}

/// Lane-mode dot + axpy over a run-length driver: the dot side lanes
/// exactly like [`dot_rle_lanes`] (offset `d` from each clamped run's
/// start → lane `d % LANES`, run value broadcast); the axpy side stays
/// elementwise in original order — with a unit-stride output the store
/// loop is a contiguous read-modify-write of one hoisted constant, the
/// shape the autovectorizer turns into straight vector ops.
fn dot_axpy_rle_lanes<S: Semi>(
    s: S,
    dot: &FFold,
    axpy: &FFold,
    ident: f64,
    acc0: f64,
    args: &DotAxpyRleArgs<'_>,
    data: &mut [f64],
) -> (f64, usize) {
    let r = &args.rle;
    let mut lanes = [ident; LANES];
    let mut last = r.lo;
    for run in r.start..r.stop {
        let c_lo = r.run_start[run].max(r.lo);
        if c_lo > r.hi {
            break;
        }
        let c_hi = r.run_end[run].min(r.hi);
        let a = r.vals[run];
        let va = [a; LANES];
        let v = if args.k_first { s.bin(axpy.bin, args.k, a) } else { s.bin(axpy.bin, a, args.k) };
        let mut c = c_lo;
        while c + LANES <= c_hi + 1 {
            let xa: [f64; LANES] = if args.xst == 1 {
                *<&[f64; LANES]>::try_from(&args.xs[args.xb + c..args.xb + c + LANES])
                    .expect("exact chunk")
            } else {
                std::array::from_fn(|kk| args.xs[args.xb + (c + kk) * args.xst])
            };
            lane_accumulate(s, dot.bin, dot.op, &mut lanes, va, xa);
            if args.ost == 1 {
                let o = args.ooff + c - args.ob_base;
                let d8: &mut [f64; LANES] =
                    (&mut data[o..o + LANES]).try_into().expect("exact chunk");
                for cell in d8 {
                    *cell = s.red(axpy.op, *cell, v);
                }
            } else {
                for kk in 0..LANES {
                    let cell = &mut data[args.ooff + (c + kk) * args.ost - args.ob_base];
                    *cell = s.red(axpy.op, *cell, v);
                }
            }
            c += LANES;
        }
        let mut kk = 0usize;
        while c <= c_hi {
            lanes[kk] =
                s.red(dot.op, lanes[kk], s.bin(dot.bin, a, args.xs[args.xb + c * args.xst]));
            let cell = &mut data[args.ooff + c * args.ost - args.ob_base];
            *cell = s.red(axpy.op, *cell, v);
            kk += 1;
            c += 1;
        }
        last = c_hi;
    }
    (lane_merge(s, dot.op, acc0, &lanes), last)
}

/// Selects the lane/scalar variant of the run-length dot + axpy pair
/// (the semiring is already chosen at the call site); the run extent
/// gates the cutover exactly like [`dot_rle_dispatch`].
fn dot_axpy_rle_dispatch<S: Semi>(
    s: S,
    dot: &FFold,
    axpy: &FFold,
    lane_ident: Option<f64>,
    acc0: f64,
    args: &DotAxpyRleArgs<'_>,
    data: &mut [f64],
) -> (f64, usize) {
    match lane_ident {
        Some(id) if args.rle.extent() > LANE_MIN => {
            dot_axpy_rle_lanes(s, dot, axpy, id, acc0, args, data)
        }
        _ => dot_axpy_rle(s, dot, axpy, acc0, args, data),
    }
}

#[inline]
fn clamp_bounds(u: &[usize], lo: &[Bound], hi: &[Bound], hi_start: i64) -> (i64, i64) {
    let mut lo_v = 0i64;
    for b in lo {
        lo_v = lo_v.max(u[b.reg] as i64 + b.delta);
    }
    let mut hi_v = hi_start;
    for b in hi {
        hi_v = hi_v.min(u[b.reg] as i64 + b.delta);
    }
    (lo_v, hi_v)
}

/// Per-loop fiber cache: the loop head resolves the driver's packed
/// arrays once; the advance instruction reads them straight back.
#[derive(Clone, Copy, Default)]
enum Fiber<'a> {
    #[default]
    None,
    Crd(&'a [usize]),
    Runs(&'a [usize], &'a [usize]),
}

/// Runs the whole program once over the given state, with the top-level
/// split heads (if `chunk` is set) clamped to the chunk's coordinate
/// window. Counters accumulate into `counters` (not reset here, so one
/// worker can fold multiple chunks into one bank).
#[allow(clippy::too_many_arguments)]
fn run_range<'a>(
    program: &BytecodeProgram,
    dense: &[&'a [f64]],
    vals: &[&'a [f64]],
    levels: &[Option<LevelView<'a>>],
    outs: &mut [Option<OutBind<'_>>],
    u: &mut Vec<usize>,
    f: &mut Vec<f64>,
    vec_pass: &mut Vec<bool>,
    vec_bases: &mut Vec<usize>,
    gathers: &mut GatherBank,
    counters: &mut CounterBank,
    chunk: Option<Chunk<'_>>,
    mode: CounterMode,
    lanes: bool,
) {
    // Reset register files and vector-loop scratch (reusing capacity).
    u.clear();
    u.extend_from_slice(&program.u_init);
    f.clear();
    f.resize(program.n_f, 0.0);
    vec_pass.clear();
    vec_pass.resize(program.n_vec_items, false);
    vec_bases.clear();
    vec_bases.resize(program.n_vec_bases, 0);
    gathers.reset(program.n_vec_gathers);
    let u = u.as_mut_slice();
    let f = f.as_mut_slice();
    let vec_pass = vec_pass.as_mut_slice();
    let vec_bases = vec_bases.as_mut_slice();
    let mut fibers_t: Scratch<Fiber<'a>, MAX_CACHES> = Scratch::new(program.n_caches);
    let fibers = fibers_t.as_mut_slice();
    let lvl_base = program.level_base.as_slice();
    let oo = program.out_ordinal.as_slice();

    let mut missing = false;
    let reads = &mut counters.reads;
    let mut flops = 0u64;
    let mut writes = 0u64;
    let mut iterations = 0u64;
    // Per-kind vector-loop dispatch tally, indexed by
    // `telemetry::BodyKind::index`. Kept as plain locals on the hot
    // path and flushed to the global registry once per chunk, so
    // parallel workers never contend on a shared counter cache line.
    let mut dispatch = [0u64; telemetry::BODY_KINDS.len()];

    /// Builds the per-loop [`VecRun`] over this function's binding
    /// tables and scratch (one point of truth for the field set; the
    /// free identifiers resolve to the locals above).
    macro_rules! vec_run {
        ($items:expr, $idx:expr) => {
            VecRun {
                items: $items,
                idx: $idx,
                pass: vec_pass,
                bases: vec_bases,
                gathers: &mut *gathers,
                u: &mut *u,
                f: &mut *f,
                dense,
                vals,
                levels,
                lvl_base,
                outs: &mut *outs,
                oo,
                reads: &mut reads[..],
                flops: 0,
                writes: 0,
                miss: false,
            }
        };
    }

    /// Builds the per-loop [`FusedRun`] over the same tables.
    macro_rules! fused_run {
        () => {
            FusedRun {
                u: &mut *u,
                f: &mut *f,
                gathers: &mut *gathers,
                dense,
                vals,
                levels,
                lvl_base,
                outs: &mut *outs,
                oo,
                reads: &mut reads[..],
                flops: 0,
                writes: 0,
                lanes,
            }
        };
    }

    let instrs = &program.instrs;
    let mut pc = 0usize;
    loop {
        match &instrs[pc] {
            Instr::Jump { to } => {
                pc = *to;
            }
            Instr::DenseLoopHead { idx, cur, end, extent, lo, hi, exit } => {
                let (mut lo_v, mut hi_v) = clamp_bounds(u, lo, hi, *extent as i64 - 1);
                clamp_to_chunk(chunk, pc, &mut lo_v, &mut hi_v);
                if lo_v > hi_v {
                    pc = *exit;
                } else {
                    u[*cur] = lo_v as usize;
                    u[*end] = hi_v as usize;
                    u[*idx] = lo_v as usize;
                    iterations += 1;
                    pc += 1;
                }
            }
            Instr::DenseLoopNext { idx, cur, end, back } => {
                let c = u[*cur] + 1;
                if c <= u[*end] {
                    u[*cur] = c;
                    u[*idx] = c;
                    iterations += 1;
                    pc = *back;
                } else {
                    pc += 1;
                }
            }
            Instr::SparseLoopHead {
                tensor,
                level: lv,
                cache,
                idx,
                parent,
                child,
                cur,
                end,
                lo,
                hi,
                exit,
            } => {
                let p = u[*parent];
                if p == MISS {
                    pc = *exit;
                    continue;
                }
                let (mut lo_v, mut hi_v) = clamp_bounds(u, lo, hi, i64::MAX);
                clamp_to_chunk(chunk, pc, &mut lo_v, &mut hi_v);
                let LevelView::Sparse { pos, crd, .. } = level(levels, lvl_base, *tensor, *lv)
                else {
                    unreachable!("sparse loop over a non-sparse level");
                };
                let begin = pos[p];
                let stop = pos[p + 1];
                let slice = &crd[begin..stop];
                let start = begin + slice.partition_point(|&c| (c as i64) < lo_v);
                let stop = begin + slice.partition_point(|&c| (c as i64) <= hi_v);
                if start >= stop {
                    pc = *exit;
                } else {
                    fibers[*cache] = Fiber::Crd(crd);
                    u[*cur] = start;
                    u[*end] = stop;
                    u[*idx] = crd[start];
                    u[*child] = start;
                    iterations += 1;
                    pc += 1;
                }
            }
            Instr::SparseLoopNext { cache, idx, child, cur, end, back } => {
                let c = u[*cur] + 1;
                if c < u[*end] {
                    let Fiber::Crd(crd) = fibers[*cache] else {
                        unreachable!("sparse advance before its head");
                    };
                    u[*cur] = c;
                    u[*idx] = crd[c];
                    u[*child] = c;
                    iterations += 1;
                    pc = *back;
                } else {
                    pc += 1;
                }
            }
            Instr::RleLoopHead {
                tensor,
                level: lv,
                cache,
                idx,
                parent,
                child,
                run,
                run_end: run_end_reg,
                coord,
                hi_reg,
                lo,
                hi,
                exit,
            } => {
                let p = u[*parent];
                if p == MISS {
                    pc = *exit;
                    continue;
                }
                let (mut lo_v, mut hi_v) = clamp_bounds(u, lo, hi, i64::MAX);
                clamp_to_chunk(chunk, pc, &mut lo_v, &mut hi_v);
                if lo_v > hi_v {
                    pc = *exit;
                    continue;
                }
                let LevelView::RunLength { pos, run_start, run_end, .. } =
                    level(levels, lvl_base, *tensor, *lv)
                else {
                    unreachable!("rle loop over a non-rle level");
                };
                let begin = pos[p];
                let stop = pos[p + 1];
                let start = begin + run_end[begin..stop].partition_point(|&c| (c as i64) < lo_v);
                if start >= stop {
                    pc = *exit;
                    continue;
                }
                let c0 = run_start[start].max(lo_v as usize);
                // 0 <= lo_v <= hi_v holds here, so the cast is exact.
                let hi_u = hi_v as usize;
                if c0 > hi_u {
                    pc = *exit;
                    continue;
                }
                fibers[*cache] = Fiber::Runs(run_start, run_end);
                u[*run] = start;
                u[*run_end_reg] = stop;
                u[*coord] = c0;
                u[*hi_reg] = hi_u;
                u[*idx] = c0;
                u[*child] = start;
                iterations += 1;
                pc += 1;
            }
            Instr::RleLoopNext {
                cache,
                idx,
                child,
                run,
                run_end: run_end_reg,
                coord,
                hi_reg,
                back,
            } => {
                let Fiber::Runs(run_start, run_end) = fibers[*cache] else {
                    unreachable!("rle advance before its head");
                };
                let mut r = u[*run];
                let mut c = u[*coord];
                if c >= run_end[r] {
                    r += 1;
                    if r >= u[*run_end_reg] {
                        pc += 1;
                        continue;
                    }
                    c = run_start[r];
                } else {
                    c += 1;
                }
                if c > u[*hi_reg] {
                    pc += 1;
                } else {
                    u[*run] = r;
                    u[*coord] = c;
                    u[*idx] = c;
                    u[*child] = r;
                    iterations += 1;
                    pc = *back;
                }
            }
            Instr::Probe { tensor, level: lv, parent, child, idx } => {
                let p = u[*parent];
                u[*child] = if p == MISS {
                    MISS
                } else {
                    level(levels, lvl_base, *tensor, *lv).find(p, u[*idx]).unwrap_or(MISS)
                };
                pc += 1;
            }
            Instr::JumpIfCmp { op, a, b, to } => {
                pc = if op.eval(u[*a], u[*b]) { *to } else { pc + 1 };
            }
            Instr::JumpIfNotCmp { op, a, b, to } => {
                pc = if op.eval(u[*a], u[*b]) { pc + 1 } else { *to };
            }
            Instr::Const { dst, val } => {
                f[*dst] = *val;
                pc += 1;
            }
            Instr::Copy { dst, src } => {
                f[*dst] = f[*src];
                pc += 1;
            }
            Instr::Bin { op, dst, a, b } => {
                f[*dst] = op.apply(f[*a], f[*b]);
                flops += 1;
                pc += 1;
            }
            Instr::ReadDense { dst, tensor, terms } => {
                f[*dst] = dense[*tensor][offset(u, terms)];
                reads[*tensor] += 1;
                pc += 1;
            }
            Instr::ReadOutput { dst, tensor, terms } => {
                let ob = outs[oo[*tensor]].as_ref().expect("output bound");
                f[*dst] = ob.data[offset(u, terms) - ob.base];
                reads[*tensor] += 1;
                pc += 1;
            }
            Instr::ReadSparsePath { dst, tensor, leaf, annihilator } => {
                let leaf_pos = u[*leaf];
                if leaf_pos == MISS {
                    if *annihilator {
                        missing = true;
                    }
                    f[*dst] = 0.0;
                } else {
                    f[*dst] = vals[*tensor][leaf_pos];
                    reads[*tensor] += 1;
                }
                pc += 1;
            }
            Instr::ReadSparseDirect { dst, tensor, leaf } => {
                f[*dst] = vals[*tensor][u[*leaf]];
                reads[*tensor] += 1;
                pc += 1;
            }
            Instr::ReadSparseRandom { dst, tensor, modes, annihilator } => {
                let mut p = 0usize;
                let mut found = true;
                for (lv, &m) in modes.iter().enumerate() {
                    match level(levels, lvl_base, *tensor, lv).find(p, u[m]) {
                        Some(next) => p = next,
                        None => {
                            found = false;
                            break;
                        }
                    }
                }
                if found {
                    f[*dst] = vals[*tensor][p];
                    reads[*tensor] += 1;
                } else {
                    if *annihilator {
                        missing = true;
                    }
                    f[*dst] = 0.0;
                }
                pc += 1;
            }
            Instr::CmpVal { dst, op, a, b } => {
                f[*dst] = if op.eval(u[*a], u[*b]) { 1.0 } else { 0.0 };
                pc += 1;
            }
            Instr::LookupTable { dst, table, src } => {
                let i = f[*src] as usize;
                f[*dst] = program.tables[*table].get(i).copied().unwrap_or(0.0);
                pc += 1;
            }
            Instr::ClearMiss => {
                missing = false;
                pc += 1;
            }
            Instr::JumpIfMiss { to } => {
                pc = if missing { *to } else { pc + 1 };
            }
            Instr::JumpIfUMiss { reg, to } => {
                pc = if u[*reg] == MISS { *to } else { pc + 1 };
            }
            Instr::WriteOutput { tensor, terms, op, src } => {
                let off = offset(u, terms);
                let ob = outs[oo[*tensor]].as_mut().expect("output bound");
                let cell = &mut ob.data[off - ob.base];
                *cell = op.apply(*cell, f[*src]);
                writes += 1;
                if *op != AssignOp::Overwrite {
                    flops += 1;
                }
                pc += 1;
            }
            Instr::WriteScalar { slot, op, src } => {
                f[*slot] = op.apply(f[*slot], f[*src]);
                if *op != AssignOp::Overwrite {
                    flops += 1;
                }
                pc += 1;
            }
            Instr::FusedWriteOutput { tensor, terms, bin, op, a, b, check_miss } => {
                let v = bin.apply(f[*a], f[*b]);
                flops += 1;
                if !(*check_miss && missing) {
                    let off = offset(u, terms);
                    let ob = outs[oo[*tensor]].as_mut().expect("output bound");
                    let cell = &mut ob.data[off - ob.base];
                    *cell = op.apply(*cell, v);
                    writes += 1;
                    if *op != AssignOp::Overwrite {
                        flops += 1;
                    }
                }
                pc += 1;
            }
            Instr::FusedWriteScalar { slot, bin, op, a, b, check_miss } => {
                let v = bin.apply(f[*a], f[*b]);
                flops += 1;
                if !(*check_miss && missing) {
                    f[*slot] = op.apply(f[*slot], v);
                    if *op != AssignOp::Overwrite {
                        flops += 1;
                    }
                }
                pc += 1;
            }
            Instr::FoldWriteOutput { tensor, terms, bin, op, srcs, check_miss } => {
                let (first, rest) = srcs.split_first().expect("folds have operands");
                let mut v = f[*first];
                for s in rest {
                    v = bin.apply(v, f[*s]);
                }
                flops += rest.len() as u64;
                if !(*check_miss && missing) {
                    let off = offset(u, terms);
                    let ob = outs[oo[*tensor]].as_mut().expect("output bound");
                    let cell = &mut ob.data[off - ob.base];
                    *cell = op.apply(*cell, v);
                    writes += 1;
                    if *op != AssignOp::Overwrite {
                        flops += 1;
                    }
                }
                pc += 1;
            }
            Instr::FoldWriteScalar { slot, bin, op, srcs, check_miss } => {
                let (first, rest) = srcs.split_first().expect("folds have operands");
                let mut v = f[*first];
                for s in rest {
                    v = bin.apply(v, f[*s]);
                }
                flops += rest.len() as u64;
                if !(*check_miss && missing) {
                    f[*slot] = op.apply(f[*slot], v);
                    if *op != AssignOp::Overwrite {
                        flops += 1;
                    }
                }
                pc += 1;
            }
            Instr::InitScalar { slot, val } => {
                f[*slot] = *val;
                pc += 1;
            }
            Instr::VecDenseLoop { idx, extent, lo, hi, items } => {
                let (mut lo_v, mut hi_v) = clamp_bounds(u, lo, hi, *extent as i64 - 1);
                clamp_to_chunk(chunk, pc, &mut lo_v, &mut hi_v);
                if lo_v <= hi_v {
                    let iters = (hi_v - lo_v + 1) as u64;
                    iterations += iters;
                    let n_pass = eval_guards(items, u, vec_pass);
                    if let Some(fu) = fused_single(items, vec_pass, n_pass) {
                        dispatch[body_kind(fu.kind).index()] += 1;
                        let mut fr = fused_run!();
                        let drive = FDrive::Range { lo: lo_v as usize, hi: hi_v as usize };
                        fr.run_mode(mode, fu, drive, *idx, iters);
                        flops += fr.flops;
                        writes += fr.writes;
                    } else if n_pass > 0 {
                        dispatch[telemetry::BodyKind::Steps.index()] += 1;
                        vec_prepare(
                            items,
                            u,
                            iters,
                            vec_pass,
                            vec_bases,
                            reads,
                            &mut flops,
                            &mut writes,
                        );
                        let mut vr = vec_run!(items, *idx);
                        vr.init_gathers();
                        for j in lo_v as usize..=hi_v as usize {
                            vr.exec_coord(j, None, None);
                        }
                        flops += vr.flops;
                        writes += vr.writes;
                    } else {
                        u[*idx] = hi_v as usize;
                    }
                }
                pc += 1;
            }
            Instr::VecSparseLoop { tensor, level: lv, idx, parent, lo, hi, items } => {
                let p = u[*parent];
                if p != MISS {
                    let LevelView::Sparse { pos, crd, .. } = level(levels, lvl_base, *tensor, *lv)
                    else {
                        unreachable!("vector sparse loop over a non-sparse level");
                    };
                    let (mut lo_v, mut hi_v) = clamp_bounds(u, lo, hi, i64::MAX);
                    clamp_to_chunk(chunk, pc, &mut lo_v, &mut hi_v);
                    let begin = pos[p];
                    let fiber_end = pos[p + 1];
                    let slice = &crd[begin..fiber_end];
                    let start = begin + slice.partition_point(|&c| (c as i64) < lo_v);
                    let stop = begin + slice.partition_point(|&c| (c as i64) <= hi_v);
                    if start < stop {
                        let iters = (stop - start) as u64;
                        iterations += iters;
                        let tvals = vals[*tensor];
                        let n_pass = eval_guards(items, u, vec_pass);
                        if let Some(fu) = fused_single(items, vec_pass, n_pass) {
                            dispatch[body_kind(fu.kind).index()] += 1;
                            let mut fr = fused_run!();
                            let drive = FDrive::Crd { vals: tvals, crd, start, stop };
                            fr.run_mode(mode, fu, drive, *idx, iters);
                            flops += fr.flops;
                            writes += fr.writes;
                        } else if n_pass > 0 {
                            dispatch[telemetry::BodyKind::Steps.index()] += 1;
                            vec_prepare(
                                items,
                                u,
                                iters,
                                vec_pass,
                                vec_bases,
                                reads,
                                &mut flops,
                                &mut writes,
                            );
                            let mut vr = vec_run!(items, *idx);
                            vr.init_gathers();
                            for (posn, &coord) in crd.iter().enumerate().take(stop).skip(start) {
                                vr.exec_coord(coord, Some((tvals, posn)), None);
                            }
                            flops += vr.flops;
                            writes += vr.writes;
                        } else {
                            u[*idx] = crd[stop - 1];
                        }
                    }
                }
                pc += 1;
            }
            Instr::VecRleLoop { tensor, level: lv, idx, parent, lo, hi, items } => {
                let p = u[*parent];
                if p != MISS {
                    let (mut lo_v, mut hi_v) = clamp_bounds(u, lo, hi, i64::MAX);
                    clamp_to_chunk(chunk, pc, &mut lo_v, &mut hi_v);
                    if lo_v <= hi_v {
                        let LevelView::RunLength { pos, run_start, run_end, .. } =
                            level(levels, lvl_base, *tensor, *lv)
                        else {
                            unreachable!("vector rle loop over a non-rle level");
                        };
                        let begin = pos[p];
                        let stop = pos[p + 1];
                        let start =
                            begin + run_end[begin..stop].partition_point(|&c| (c as i64) < lo_v);
                        let (lo_u, hi_u) = (lo_v as usize, hi_v as usize);
                        // Pass 1: the covered coordinate count, so the
                        // bulk accounting matches the general walk.
                        let mut iters = 0u64;
                        for r in start..stop {
                            let c_lo = run_start[r].max(lo_u);
                            if c_lo > hi_u {
                                break;
                            }
                            iters += (run_end[r].min(hi_u) - c_lo + 1) as u64;
                        }
                        if iters > 0 {
                            iterations += iters;
                            let tvals = vals[*tensor];
                            let n_pass = eval_guards(items, u, vec_pass);
                            if let Some(fu) = fused_single(items, vec_pass, n_pass) {
                                dispatch[body_kind(fu.kind).index()] += 1;
                                let mut fr = fused_run!();
                                let drive = FDrive::Rle {
                                    vals: tvals,
                                    run_start,
                                    run_end,
                                    start,
                                    stop,
                                    lo: lo_u,
                                    hi: hi_u,
                                };
                                fr.run_mode(mode, fu, drive, *idx, iters);
                                flops += fr.flops;
                                writes += fr.writes;
                            } else if n_pass > 0 {
                                dispatch[telemetry::BodyKind::Steps.index()] += 1;
                                vec_prepare(
                                    items,
                                    u,
                                    iters,
                                    vec_pass,
                                    vec_bases,
                                    reads,
                                    &mut flops,
                                    &mut writes,
                                );
                                let mut vr = vec_run!(items, *idx);
                                vr.init_gathers();
                                // Pass 2: expand each run into strided
                                // body applications at its constant
                                // value slot.
                                for r in start..stop {
                                    let c_lo = run_start[r].max(lo_u);
                                    if c_lo > hi_u {
                                        break;
                                    }
                                    let c_hi = run_end[r].min(hi_u);
                                    for c in c_lo..=c_hi {
                                        vr.exec_coord(c, Some((tvals, r)), None);
                                    }
                                }
                                flops += vr.flops;
                                writes += vr.writes;
                            } else {
                                let mut last = lo_u;
                                for r in start..stop {
                                    if run_start[r].max(lo_u) > hi_u {
                                        break;
                                    }
                                    last = run_end[r].min(hi_u);
                                }
                                u[*idx] = last;
                            }
                        }
                    }
                }
                pc += 1;
            }
            Instr::VecIsectLoop {
                tensor,
                level: lv,
                idx,
                parent,
                probe_tensor,
                probe_level,
                probe_parent,
                lo,
                hi,
                items,
            } => {
                let p = u[*parent];
                if p != MISS {
                    let LevelView::Sparse { pos, crd, .. } = level(levels, lvl_base, *tensor, *lv)
                    else {
                        unreachable!("vector intersection loop over a non-sparse level");
                    };
                    let (mut lo_v, mut hi_v) = clamp_bounds(u, lo, hi, i64::MAX);
                    clamp_to_chunk(chunk, pc, &mut lo_v, &mut hi_v);
                    let begin = pos[p];
                    let fiber_end = pos[p + 1];
                    let slice = &crd[begin..fiber_end];
                    let start = begin + slice.partition_point(|&c| (c as i64) < lo_v);
                    let stop = begin + slice.partition_point(|&c| (c as i64) <= hi_v);
                    if start < stop {
                        let iters = (stop - start) as u64;
                        iterations += iters;
                        let n_pass = eval_guards(items, u, vec_pass);
                        let fused = fused_single(items, vec_pass, n_pass);
                        if let Some(fu) = fused {
                            dispatch[body_kind(fu.kind).index()] += 1;
                        } else if n_pass > 0 {
                            dispatch[telemetry::BodyKind::Steps.index()] += 1;
                        }
                        if n_pass > 0 && fused.is_none() {
                            vec_prepare(
                                items,
                                u,
                                iters,
                                vec_pass,
                                vec_bases,
                                reads,
                                &mut flops,
                                &mut writes,
                            );
                        }
                        // The probed fiber as a forward-only cursor —
                        // empty when its own path prefix is unstored
                        // (every probe misses, but the driver still
                        // iterates, as in the interpreter). All three
                        // level formats probe through the same cursor.
                        let pb = u[*probe_parent];
                        let (bvals, probe_cur) = if pb == MISS {
                            (&[][..], ProbeCur::Empty)
                        } else {
                            let bv = vals[*probe_tensor];
                            match level(levels, lvl_base, *probe_tensor, *probe_level) {
                                LevelView::Sparse { pos, crd, .. } => {
                                    (bv, ProbeCur::Crd { crd, cur: pos[pb], end: pos[pb + 1] })
                                }
                                LevelView::Dense { size } => {
                                    (bv, ProbeCur::Dense { base: pb * size, size })
                                }
                                LevelView::RunLength { pos, run_start, run_end, .. } => (
                                    bv,
                                    ProbeCur::Runs {
                                        run_start,
                                        run_end,
                                        cur: pos[pb],
                                        end: pos[pb + 1],
                                    },
                                ),
                            }
                        };
                        let tvals = vals[*tensor];
                        if let Some(fu) = fused {
                            if let Some((slot, bin, op, pt)) = fu.isect_dot {
                                // The dominant shape, pre-analyzed at
                                // compile time: no entry-time shape
                                // resolution at all (this loop is
                                // entered per (i, j) pair).
                                let count = mode == CounterMode::Exact;
                                if count {
                                    for &(t, n) in fu.bulk.reads.iter() {
                                        reads[t] += n * iters;
                                    }
                                    flops += fu.bulk.flops * iters;
                                }
                                let (cw, aw) = (&crd[start..stop], &tvals[start..stop]);
                                let acc0 = f[slot];
                                let lane_ident =
                                    if lanes && fu.lanes > 1 { op.identity() } else { None };
                                let (acc, hits) = isect_dot_dispatch(
                                    bin, op, lane_ident, None, None, acc0, cw, aw, bvals, probe_cur,
                                );
                                f[slot] = acc;
                                u[*idx] = crd[stop - 1];
                                if count {
                                    reads[pt] += hits;
                                    if op != AssignOp::Overwrite {
                                        flops += hits;
                                    }
                                }
                            } else {
                                let mut fr = fused_run!();
                                let drive = FDrive::Isect {
                                    vals: tvals,
                                    crd,
                                    start,
                                    stop,
                                    bvals,
                                    probe: probe_cur,
                                };
                                fr.run_mode(mode, fu, drive, *idx, iters);
                                flops += fr.flops;
                                writes += fr.writes;
                            }
                        } else if n_pass > 0 {
                            let mut vr = vec_run!(items, *idx);
                            vr.init_gathers();
                            // Forward-only merge: both sides are sorted,
                            // so the probe cursor never revisits — one
                            // gallop / run-walk per step instead of the
                            // general path's full-fiber binary search.
                            let mut probe = probe_cur;
                            for (posa, &c) in crd.iter().enumerate().take(stop).skip(start) {
                                let pmatch = probe.find(c);
                                vr.exec_coord(c, Some((tvals, posa)), Some((bvals, pmatch)));
                            }
                            flops += vr.flops;
                            writes += vr.writes;
                        } else {
                            u[*idx] = crd[stop - 1];
                        }
                    }
                }
                pc += 1;
            }
            Instr::Halt => break,
        }
    }

    counters.flops += flops;
    counters.writes += writes;
    counters.iterations += iterations;

    if telemetry::enabled() {
        let metrics = telemetry::global();
        for (kind, n) in telemetry::BODY_KINDS.iter().zip(dispatch) {
            if n > 0 {
                metrics.fused(*kind).add(n);
            }
        }
    }
}

pub(crate) fn execute(
    program: &BytecodeProgram,
    inputs: &HashMap<String, Tensor>,
    outputs: &mut HashMap<String, DenseTensor>,
    ctx: &mut ExecContext,
    parallelism: Parallelism,
    out_counters: &mut Counters,
) -> Result<(), ExecError> {
    execute_inner(program, inputs, outputs, ctx, parallelism, out_counters, None)
}

/// Serial execution of one coordinate chunk `k` of `n`: the split heads
/// are clamped to `[k*extent/n, (k+1)*extent/n)` and every output is
/// bound at its full buffer — owned outputs receive only their window
/// rows, reduced outputs accumulate the chunk's partial on top of the
/// caller-provided initial values. The caller must have verified the
/// plan is splittable (`program.split.is_some()`).
pub(crate) fn execute_chunk(
    program: &BytecodeProgram,
    inputs: &HashMap<String, Tensor>,
    outputs: &mut HashMap<String, DenseTensor>,
    ctx: &mut ExecContext,
    out_counters: &mut Counters,
    k: usize,
    n: usize,
) -> Result<(), ExecError> {
    execute_inner(program, inputs, outputs, ctx, Parallelism::Serial, out_counters, Some((k, n)))
}

#[allow(clippy::too_many_arguments)]
fn execute_inner(
    program: &BytecodeProgram,
    inputs: &HashMap<String, Tensor>,
    outputs: &mut HashMap<String, DenseTensor>,
    ctx: &mut ExecContext,
    parallelism: Parallelism,
    out_counters: &mut Counters,
    shard: Option<(usize, usize)>,
) -> Result<(), ExecError> {
    // Run-phase telemetry: one clock read on entry, one on success.
    // When telemetry is off the clock is never touched.
    let run_start = telemetry::enabled().then(std::time::Instant::now);
    // Bind tensor slots, validating that shapes still match the plan.
    // The tables live on the stack (inline for typical plan sizes) so
    // the steady-state path never allocates.
    let n_slots = program.tensors.len();
    let mut dense_t: Scratch<&[f64], MAX_SLOTS> = Scratch::new(n_slots);
    let dense = dense_t.as_mut_slice();
    let mut vals_t: Scratch<&[f64], MAX_SLOTS> = Scratch::new(n_slots);
    let vals = vals_t.as_mut_slice();
    let mut levels_t: Scratch<Option<LevelView>, MAX_LEVELS> = Scratch::new(program.n_levels);
    let levels = levels_t.as_mut_slice();
    for (slot, info) in program.tensors.iter().enumerate() {
        match info.kind {
            SlotKind::DenseInput => match inputs.get(&info.name) {
                Some(Tensor::Dense(t)) => {
                    check_dims(&info.name, &info.dims, t.dims())?;
                    dense[slot] = t.as_slice();
                }
                _ => return Err(ExecError::UnknownTensor { name: info.name.clone() }),
            },
            SlotKind::SparseInput => match inputs.get(&info.name) {
                Some(Tensor::Sparse(t)) => {
                    check_dims(&info.name, &info.dims, t.dims())?;
                    for k in 0..t.rank() {
                        levels[program.level_base[slot] + k] = Some(t.level_view(k));
                    }
                    vals[slot] = t.values();
                }
                _ => return Err(ExecError::UnknownTensor { name: info.name.clone() }),
            },
            SlotKind::Output => match outputs.get(&info.name) {
                Some(t) => check_dims(&info.name, &info.dims, t.dims())?,
                None => return Err(ExecError::UnknownTensor { name: info.name.clone() }),
            },
        }
    }
    // Borrow every output mutably in place (one pass over the map — the
    // iterator hands out disjoint `&mut`s, so no tensors move).
    let mut outs_t: OutTable<'_, MAX_OUTS> = OutTable::new(program.n_outputs);
    let outs = outs_t.as_mut_slice();
    for (name, tensor) in outputs.iter_mut() {
        if let Some(slot) = program
            .tensors
            .iter()
            .position(|info| info.kind == SlotKind::Output && info.name == *name)
        {
            outs[program.out_ordinal[slot]] =
                Some(OutBind { data: tensor.as_mut_slice(), base: 0 });
        }
    }

    // Decide the execution shape: chunked workers when the plan is
    // splittable and more than one thread was requested, serial
    // otherwise (including degenerate domains). A shard-chunk run is
    // always serial — the caller is the unit of parallelism.
    let plan = match (parallelism, &program.split) {
        (Parallelism::Threads(n), Some(split)) if n >= 2 && shard.is_none() => {
            let max_extent = split.heads.iter().map(|&(_, e)| e).max().unwrap_or(0);
            let n_chunks = max_extent.min(n * CHUNKS_PER_WORKER);
            let threads = n.min(n_chunks);
            (threads >= 2).then_some((split, n_chunks, threads))
        }
        _ => None,
    };

    let mode = ctx.counter_mode();
    let lanes = ctx.lane_mode() == LaneMode::Lanes;
    match plan {
        None => {
            let chunk = match (&program.split, shard) {
                (Some(split), Some((k, n))) => Some(Chunk { heads: &split.heads, k, n }),
                _ => None,
            };
            let bank = &mut ctx.banks(1)[0];
            bank.counters.reset(n_slots);
            let Bank { u, f, vec_pass, vec_bases, gathers, counters, .. } = bank;
            run_range(
                program, dense, vals, levels, outs, u, f, vec_pass, vec_bases, gathers, counters,
                chunk, mode, lanes,
            );
            bank.counters.write_to(program.tensors.iter().map(|t| t.name.as_str()), out_counters);
        }
        Some((split, n_chunks, threads)) => {
            run_parallel(
                program,
                dense,
                vals,
                levels,
                outs,
                ctx,
                split,
                n_chunks,
                threads,
                out_counters,
                mode,
                lanes,
            );
        }
    }
    if let Some(start) = run_start {
        let metrics = telemetry::global();
        metrics.vm_runs.inc();
        metrics.vm_run_ns.add(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    Ok(())
}

/// Row-stride of an output slot (product of its trailing dims).
fn row_stride(dims: &[usize]) -> usize {
    dims[1..].iter().product()
}

/// Chunked execution over a worker pool of scoped threads. Chunks are
/// dealt round-robin (`chunk k → worker k % threads`); every worker
/// processes its chunks in increasing order, so the merge order — and
/// therefore every output bit and counter — is a deterministic function
/// of (plan, data, thread count).
#[allow(clippy::too_many_arguments)]
fn run_parallel<'a>(
    program: &BytecodeProgram,
    dense: &[&'a [f64]],
    vals: &[&'a [f64]],
    levels: &[Option<LevelView<'a>>],
    outs: &mut [Option<OutBind<'_>>],
    ctx: &mut ExecContext,
    split: &SplitInfo,
    n_chunks: usize,
    threads: usize,
    out_counters: &mut Counters,
    mode: CounterMode,
    lanes: bool,
) {
    let n_slots = program.tensors.len();
    let oo = program.out_ordinal.as_slice();

    // Distribute the outputs: owned outputs split at chunk row
    // boundaries; reduced outputs keep their main slice here and hand
    // each worker a private buffer instead.
    let mut chunk_owned: Vec<Vec<(usize, OutBind<'_>)>> =
        (0..n_chunks).map(|_| Vec::new()).collect();
    let mut reduced_meta: Vec<(usize, AssignOp, usize)> = Vec::new();
    let mut reduced_mains: Vec<&mut [f64]> = Vec::new();
    for &(slot, mode) in &split.outputs {
        let bind = outs[oo[slot]].take().expect("output bound");
        match mode {
            ParOut::Owned => {
                let extent = split.owned_extent.expect("owned outputs pin a common extent");
                let stride = row_stride(&program.tensors[slot].dims);
                let mut rest = bind.data;
                let mut consumed = 0usize;
                for (k, owned) in chunk_owned.iter_mut().enumerate() {
                    let end = ((k + 1) * extent / n_chunks) * stride;
                    let (piece, tail) = rest.split_at_mut(end - consumed);
                    owned.push((slot, OutBind { data: piece, base: consumed }));
                    consumed = end;
                    rest = tail;
                }
            }
            ParOut::Reduced(op) => {
                reduced_meta.push((slot, op, bind.data.len()));
                reduced_mains.push(bind.data);
            }
        }
    }

    // Deal chunks to workers round-robin.
    type WorkerChunks<'o> = Vec<(usize, Vec<(usize, OutBind<'o>)>)>;
    let mut worker_chunks: Vec<WorkerChunks<'_>> = (0..threads).map(|_| Vec::new()).collect();
    for (k, owned) in chunk_owned.into_iter().enumerate() {
        worker_chunks[k % threads].push((k, owned));
    }

    let banks = ctx.banks(threads);
    let heads = split.heads.as_slice();
    let reduced_meta_ref = &reduced_meta;
    rayon::scope(|s| {
        // One batched submission for the whole fan-out: a k-worker
        // dispatch costs one pool lock and one wakeup round instead of
        // k of each (the spawn traffic dominated sub-200µs kernels).
        s.spawn_batch(banks.iter_mut().zip(worker_chunks).map(|(bank, chunks)| {
            move |_: &rayon::Scope<'_, '_>| {
                bank.counters.reset(n_slots);
                for (r, &(_, op, len)) in reduced_meta_ref.iter().enumerate() {
                    let identity = op.identity().expect("reduced outputs use reducing ops");
                    bank.reset_reduce(r, len, identity);
                }
                let Bank { u, f, vec_pass, vec_bases, gathers, counters, reduce } = bank;
                for (k, owned) in chunks {
                    let mut outs_t: OutTable<'_, MAX_OUTS> = OutTable::new(program.n_outputs);
                    let w_outs = outs_t.as_mut_slice();
                    for (slot, ob) in owned {
                        w_outs[oo[slot]] = Some(ob);
                    }
                    for (buf, &(slot, _, _)) in reduce.iter_mut().zip(reduced_meta_ref) {
                        w_outs[oo[slot]] = Some(OutBind { data: buf, base: 0 });
                    }
                    let chunk = Chunk { heads, k, n: n_chunks };
                    run_range(
                        program,
                        dense,
                        vals,
                        levels,
                        w_outs,
                        u,
                        f,
                        vec_pass,
                        vec_bases,
                        gathers,
                        counters,
                        Some(chunk),
                        mode,
                        lanes,
                    );
                }
            }
        }));
    });

    // Merge in fixed worker order: integer counter sums match the
    // serial totals exactly; reduction buffers fold with their operator.
    let mut total = CounterBank::with_slots(n_slots);
    for bank in banks.iter() {
        total.merge(&bank.counters);
    }
    total.write_to(program.tensors.iter().map(|t| t.name.as_str()), out_counters);
    for (r, main) in reduced_mains.into_iter().enumerate() {
        let op = reduced_meta[r].1;
        for bank in banks.iter() {
            for (cell, v) in main.iter_mut().zip(&bank.reduce[r]) {
                *cell = op.apply(*cell, *v);
            }
        }
    }
}

fn check_dims(name: &str, expected: &[usize], got: &[usize]) -> Result<(), ExecError> {
    if expected == got {
        Ok(())
    } else {
        Err(ExecError::BindingShapeMismatch {
            name: name.to_string(),
            expected: expected.to_vec(),
            got: got.to_vec(),
        })
    }
}
