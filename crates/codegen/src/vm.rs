//! The bytecode VM: executes a [`BytecodeProgram`] over concrete
//! tensors, producing exactly the same results and [`Counters`] as the
//! tree-walking interpreter in `systec-exec`.

use std::collections::HashMap;

use systec_exec::lowered::SlotKind;
use systec_exec::{Counters, ExecError};
use systec_ir::AssignOp;
use systec_tensor::{DenseTensor, LevelView, Tensor};

use crate::bytecode::{Bound, BytecodeProgram, Instr, Term, VItem, VStep, MISS};

/// A sparse input resolved to per-level raw views.
struct SparseBind<'a> {
    levels: Vec<LevelView<'a>>,
    vals: &'a [f64],
}

#[inline]
fn offset(u: &[usize], terms: &[Term]) -> usize {
    // Nearly every access is rank 1 or 2; keep those branch-free.
    match terms {
        [t] => u[t.reg] * t.stride,
        [s, t] => u[s.reg] * s.stride + u[t.reg] * t.stride,
        _ => terms.iter().map(|t| u[t.reg] * t.stride).sum(),
    }
}

/// Evaluates vector-loop guards, caches the loop-invariant base
/// offsets, and accounts the loop's counters in bulk: every step of a
/// passing item executes exactly once per coordinate, so its counter
/// contribution is a per-iteration constant times the iteration count —
/// identical totals to bumping inside the loop, with no hot-loop
/// counter traffic.
#[allow(clippy::too_many_arguments)]
fn vec_prepare(
    items: &[VItem],
    u: &[usize],
    iters: u64,
    pass: &mut [bool],
    bases: &mut [usize],
    reads: &mut [u64],
    flops: &mut u64,
    writes: &mut u64,
) {
    for item in items {
        let ok = item.guard.iter().all(|(op, a, b)| op.eval(u[*a], u[*b]));
        pass[item.id] = ok;
        if !ok {
            continue;
        }
        for step in item.steps.iter() {
            match step {
                VStep::Load { tensor, id, base, .. } => {
                    bases[*id] = offset(u, base);
                    reads[*tensor] += iters;
                }
                VStep::LoadVal { tensor, .. } => {
                    reads[*tensor] += iters;
                }
                VStep::FoldOut { tensor: _, id, base, op, srcs, .. } => {
                    bases[*id] = offset(u, base);
                    let per_iter = (srcs.len() as u64 - 1) + u64::from(*op != AssignOp::Overwrite);
                    *flops += per_iter * iters;
                    *writes += iters;
                }
                VStep::FoldScalar { op, srcs, .. } => {
                    let per_iter = (srcs.len() as u64 - 1) + u64::from(*op != AssignOp::Overwrite);
                    *flops += per_iter * iters;
                }
            }
        }
    }
}

/// Folds registers through `bin`; the dominant binary shape is
/// branch-free. Flops are accounted in bulk by [`vec_prepare`].
#[inline]
fn fold(bin: &systec_ir::BinOp, srcs: &[usize], f: &[f64]) -> f64 {
    match srcs {
        [a, b] => bin.apply(f[*a], f[*b]),
        _ => {
            let (first, rest) = srcs.split_first().expect("folds have operands");
            let mut v = f[*first];
            for s in rest {
                v = bin.apply(v, f[*s]);
            }
            v
        }
    }
}

/// Executes the passing items of a vector loop for one coordinate.
/// Counters were accounted in bulk by [`vec_prepare`].
#[allow(clippy::too_many_arguments)]
#[inline]
fn vec_exec_items(
    items: &[VItem],
    coord: usize,
    leaf: Option<(&[f64], usize)>,
    pass: &[bool],
    bases: &[usize],
    f: &mut [f64],
    dense: &[&[f64]],
    taken: &mut [&mut DenseTensor],
    slot_to_taken: &[usize],
) {
    for item in items {
        if !pass[item.id] {
            continue;
        }
        for step in item.steps.iter() {
            match step {
                VStep::Load { dst, tensor, id, stride, .. } => {
                    f[*dst] = dense[*tensor][bases[*id] + coord * stride];
                }
                VStep::LoadVal { dst, .. } => {
                    let (vals, pos) = leaf.expect("driver value in a driven vector loop");
                    f[*dst] = vals[pos];
                }
                VStep::FoldOut { tensor, id, stride, bin, op, srcs, .. } => {
                    let v = fold(bin, srcs, f);
                    let off = bases[*id] + coord * stride;
                    let cell = &mut taken[slot_to_taken[*tensor]].as_mut_slice()[off];
                    *cell = op.apply(*cell, v);
                }
                VStep::FoldScalar { slot, bin, op, srcs } => {
                    let v = fold(bin, srcs, f);
                    f[*slot] = op.apply(f[*slot], v);
                }
            }
        }
    }
}

#[inline]
fn clamp_bounds(u: &[usize], lo: &[Bound], hi: &[Bound], hi_start: i64) -> (i64, i64) {
    let mut lo_v = 0i64;
    for b in lo {
        lo_v = lo_v.max(u[b.reg] as i64 + b.delta);
    }
    let mut hi_v = hi_start;
    for b in hi {
        hi_v = hi_v.min(u[b.reg] as i64 + b.delta);
    }
    (lo_v, hi_v)
}

pub(crate) fn execute(
    program: &BytecodeProgram,
    inputs: &HashMap<String, Tensor>,
    outputs: &mut HashMap<String, DenseTensor>,
) -> Result<Counters, ExecError> {
    // Bind tensor slots, validating that shapes still match the plan.
    let n_slots = program.tensors.len();
    let mut dense: Vec<&[f64]> = vec![&[]; n_slots];
    let mut sparse: Vec<Option<SparseBind>> = Vec::with_capacity(n_slots);
    sparse.resize_with(n_slots, || None);
    for (slot, info) in program.tensors.iter().enumerate() {
        match info.kind {
            SlotKind::DenseInput => match inputs.get(&info.name) {
                Some(Tensor::Dense(t)) => {
                    check_dims(&info.name, &info.dims, t.dims())?;
                    dense[slot] = t.as_slice();
                }
                _ => return Err(ExecError::UnknownTensor { name: info.name.clone() }),
            },
            SlotKind::SparseInput => match inputs.get(&info.name) {
                Some(Tensor::Sparse(t)) => {
                    check_dims(&info.name, &info.dims, t.dims())?;
                    sparse[slot] = Some(SparseBind {
                        levels: (0..t.rank()).map(|k| t.level_view(k)).collect(),
                        vals: t.values(),
                    });
                }
                _ => return Err(ExecError::UnknownTensor { name: info.name.clone() }),
            },
            SlotKind::Output => match outputs.get(&info.name) {
                Some(t) => check_dims(&info.name, &info.dims, t.dims())?,
                None => return Err(ExecError::UnknownTensor { name: info.name.clone() }),
            },
        }
    }
    // Borrow every output mutably in place (one pass over the map — the
    // iterator hands out disjoint `&mut`s, so no tensors move).
    let mut taken: Vec<&mut DenseTensor> = Vec::new();
    let mut slot_to_taken: Vec<usize> = vec![usize::MAX; n_slots];
    for (name, tensor) in outputs.iter_mut() {
        if let Some(slot) = program
            .tensors
            .iter()
            .position(|info| info.kind == SlotKind::Output && info.name == *name)
        {
            slot_to_taken[slot] = taken.len();
            taken.push(tensor);
        }
    }

    // Register files and counters.
    let mut u: Vec<usize> = program.u_init.clone();
    let mut f: Vec<f64> = vec![0.0; program.n_f];
    let mut missing = false;
    // Per-loop fiber caches: the loop head resolves the driver's packed
    // arrays once; the advance instruction reads them straight back.
    enum Fiber<'a> {
        None,
        Crd(&'a [usize]),
        Runs(&'a [usize], &'a [usize]),
    }
    let mut fibers: Vec<Fiber> = Vec::with_capacity(program.n_caches);
    fibers.resize_with(program.n_caches, || Fiber::None);
    // Vector-loop scratch: guard passes and cached base offsets.
    let mut vec_pass: Vec<bool> = vec![false; program.n_vec_items];
    let mut vec_bases: Vec<usize> = vec![0; program.n_vec_bases];
    let mut reads: Vec<u64> = vec![0; n_slots];
    let mut flops = 0u64;
    let mut writes = 0u64;
    let mut iterations = 0u64;

    let instrs = &program.instrs;
    let mut pc = 0usize;
    loop {
        match &instrs[pc] {
            Instr::Jump { to } => {
                pc = *to;
            }
            Instr::DenseLoopHead { idx, cur, end, extent, lo, hi, exit } => {
                let (lo_v, hi_v) = clamp_bounds(&u, lo, hi, *extent as i64 - 1);
                if lo_v > hi_v {
                    pc = *exit;
                } else {
                    u[*cur] = lo_v as usize;
                    u[*end] = hi_v as usize;
                    u[*idx] = lo_v as usize;
                    iterations += 1;
                    pc += 1;
                }
            }
            Instr::DenseLoopNext { idx, cur, end, back } => {
                let c = u[*cur] + 1;
                if c <= u[*end] {
                    u[*cur] = c;
                    u[*idx] = c;
                    iterations += 1;
                    pc = *back;
                } else {
                    pc += 1;
                }
            }
            Instr::SparseLoopHead {
                tensor,
                level,
                cache,
                idx,
                parent,
                child,
                cur,
                end,
                lo,
                hi,
                exit,
            } => {
                let p = u[*parent];
                if p == MISS {
                    pc = *exit;
                    continue;
                }
                let (lo_v, hi_v) = clamp_bounds(&u, lo, hi, i64::MAX);
                let bind = sparse[*tensor].as_ref().expect("driver tensors are sparse inputs");
                let LevelView::Sparse { pos, crd, .. } = bind.levels[*level] else {
                    unreachable!("sparse loop over a non-sparse level");
                };
                let begin = pos[p];
                let stop = pos[p + 1];
                let slice = &crd[begin..stop];
                let start = begin + slice.partition_point(|&c| (c as i64) < lo_v);
                let stop = begin + slice.partition_point(|&c| (c as i64) <= hi_v);
                if start >= stop {
                    pc = *exit;
                } else {
                    fibers[*cache] = Fiber::Crd(crd);
                    u[*cur] = start;
                    u[*end] = stop;
                    u[*idx] = crd[start];
                    u[*child] = start;
                    iterations += 1;
                    pc += 1;
                }
            }
            Instr::SparseLoopNext { cache, idx, child, cur, end, back } => {
                let c = u[*cur] + 1;
                if c < u[*end] {
                    let Fiber::Crd(crd) = fibers[*cache] else {
                        unreachable!("sparse advance before its head");
                    };
                    u[*cur] = c;
                    u[*idx] = crd[c];
                    u[*child] = c;
                    iterations += 1;
                    pc = *back;
                } else {
                    pc += 1;
                }
            }
            Instr::RleLoopHead {
                tensor,
                level,
                cache,
                idx,
                parent,
                child,
                run,
                run_end: run_end_reg,
                coord,
                hi_reg,
                lo,
                hi,
                exit,
            } => {
                let p = u[*parent];
                if p == MISS {
                    pc = *exit;
                    continue;
                }
                let (lo_v, hi_v) = clamp_bounds(&u, lo, hi, i64::MAX);
                if lo_v > hi_v {
                    pc = *exit;
                    continue;
                }
                let bind = sparse[*tensor].as_ref().expect("driver tensors are sparse inputs");
                let LevelView::RunLength { pos, run_start, run_end, .. } = bind.levels[*level]
                else {
                    unreachable!("rle loop over a non-rle level");
                };
                let begin = pos[p];
                let stop = pos[p + 1];
                let start = begin + run_end[begin..stop].partition_point(|&c| (c as i64) < lo_v);
                if start >= stop {
                    pc = *exit;
                    continue;
                }
                let c0 = run_start[start].max(lo_v as usize);
                // 0 <= lo_v <= hi_v holds here, so the cast is exact.
                let hi_u = hi_v as usize;
                if c0 > hi_u {
                    pc = *exit;
                    continue;
                }
                fibers[*cache] = Fiber::Runs(run_start, run_end);
                u[*run] = start;
                u[*run_end_reg] = stop;
                u[*coord] = c0;
                u[*hi_reg] = hi_u;
                u[*idx] = c0;
                u[*child] = start;
                iterations += 1;
                pc += 1;
            }
            Instr::RleLoopNext {
                cache,
                idx,
                child,
                run,
                run_end: run_end_reg,
                coord,
                hi_reg,
                back,
            } => {
                let Fiber::Runs(run_start, run_end) = fibers[*cache] else {
                    unreachable!("rle advance before its head");
                };
                let mut r = u[*run];
                let mut c = u[*coord];
                if c >= run_end[r] {
                    r += 1;
                    if r >= u[*run_end_reg] {
                        pc += 1;
                        continue;
                    }
                    c = run_start[r];
                } else {
                    c += 1;
                }
                if c > u[*hi_reg] {
                    pc += 1;
                } else {
                    u[*run] = r;
                    u[*coord] = c;
                    u[*idx] = c;
                    u[*child] = r;
                    iterations += 1;
                    pc = *back;
                }
            }
            Instr::Probe { tensor, level, parent, child, idx } => {
                let p = u[*parent];
                u[*child] = if p == MISS {
                    MISS
                } else {
                    let bind = sparse[*tensor].as_ref().expect("probed tensors are sparse inputs");
                    bind.levels[*level].find(p, u[*idx]).unwrap_or(MISS)
                };
                pc += 1;
            }
            Instr::JumpIfCmp { op, a, b, to } => {
                pc = if op.eval(u[*a], u[*b]) { *to } else { pc + 1 };
            }
            Instr::JumpIfNotCmp { op, a, b, to } => {
                pc = if op.eval(u[*a], u[*b]) { pc + 1 } else { *to };
            }
            Instr::Const { dst, val } => {
                f[*dst] = *val;
                pc += 1;
            }
            Instr::Copy { dst, src } => {
                f[*dst] = f[*src];
                pc += 1;
            }
            Instr::Bin { op, dst, a, b } => {
                f[*dst] = op.apply(f[*a], f[*b]);
                flops += 1;
                pc += 1;
            }
            Instr::ReadDense { dst, tensor, terms } => {
                f[*dst] = dense[*tensor][offset(&u, terms)];
                reads[*tensor] += 1;
                pc += 1;
            }
            Instr::ReadOutput { dst, tensor, terms } => {
                let t = &taken[slot_to_taken[*tensor]];
                f[*dst] = t.as_slice()[offset(&u, terms)];
                reads[*tensor] += 1;
                pc += 1;
            }
            Instr::ReadSparsePath { dst, tensor, leaf, annihilator } => {
                let leaf_pos = u[*leaf];
                if leaf_pos == MISS {
                    if *annihilator {
                        missing = true;
                    }
                    f[*dst] = 0.0;
                } else {
                    let bind = sparse[*tensor].as_ref().expect("sparse input bound");
                    f[*dst] = bind.vals[leaf_pos];
                    reads[*tensor] += 1;
                }
                pc += 1;
            }
            Instr::ReadSparseDirect { dst, tensor, leaf } => {
                let bind = sparse[*tensor].as_ref().expect("sparse input bound");
                f[*dst] = bind.vals[u[*leaf]];
                reads[*tensor] += 1;
                pc += 1;
            }
            Instr::ReadSparseRandom { dst, tensor, modes, annihilator } => {
                let bind = sparse[*tensor].as_ref().expect("sparse input bound");
                let mut p = 0usize;
                let mut found = true;
                for (level, &m) in modes.iter().enumerate() {
                    match bind.levels[level].find(p, u[m]) {
                        Some(next) => p = next,
                        None => {
                            found = false;
                            break;
                        }
                    }
                }
                if found {
                    f[*dst] = bind.vals[p];
                    reads[*tensor] += 1;
                } else {
                    if *annihilator {
                        missing = true;
                    }
                    f[*dst] = 0.0;
                }
                pc += 1;
            }
            Instr::CmpVal { dst, op, a, b } => {
                f[*dst] = if op.eval(u[*a], u[*b]) { 1.0 } else { 0.0 };
                pc += 1;
            }
            Instr::LookupTable { dst, table, src } => {
                let i = f[*src] as usize;
                f[*dst] = program.tables[*table].get(i).copied().unwrap_or(0.0);
                pc += 1;
            }
            Instr::ClearMiss => {
                missing = false;
                pc += 1;
            }
            Instr::JumpIfMiss { to } => {
                pc = if missing { *to } else { pc + 1 };
            }
            Instr::JumpIfUMiss { reg, to } => {
                pc = if u[*reg] == MISS { *to } else { pc + 1 };
            }
            Instr::WriteOutput { tensor, terms, op, src } => {
                let off = offset(&u, terms);
                let cell = &mut taken[slot_to_taken[*tensor]].as_mut_slice()[off];
                *cell = op.apply(*cell, f[*src]);
                writes += 1;
                if *op != AssignOp::Overwrite {
                    flops += 1;
                }
                pc += 1;
            }
            Instr::WriteScalar { slot, op, src } => {
                f[*slot] = op.apply(f[*slot], f[*src]);
                if *op != AssignOp::Overwrite {
                    flops += 1;
                }
                pc += 1;
            }
            Instr::FusedWriteOutput { tensor, terms, bin, op, a, b, check_miss } => {
                let v = bin.apply(f[*a], f[*b]);
                flops += 1;
                if !(*check_miss && missing) {
                    let off = offset(&u, terms);
                    let cell = &mut taken[slot_to_taken[*tensor]].as_mut_slice()[off];
                    *cell = op.apply(*cell, v);
                    writes += 1;
                    if *op != AssignOp::Overwrite {
                        flops += 1;
                    }
                }
                pc += 1;
            }
            Instr::FusedWriteScalar { slot, bin, op, a, b, check_miss } => {
                let v = bin.apply(f[*a], f[*b]);
                flops += 1;
                if !(*check_miss && missing) {
                    f[*slot] = op.apply(f[*slot], v);
                    if *op != AssignOp::Overwrite {
                        flops += 1;
                    }
                }
                pc += 1;
            }
            Instr::FoldWriteOutput { tensor, terms, bin, op, srcs, check_miss } => {
                let (first, rest) = srcs.split_first().expect("folds have operands");
                let mut v = f[*first];
                for s in rest {
                    v = bin.apply(v, f[*s]);
                }
                flops += rest.len() as u64;
                if !(*check_miss && missing) {
                    let off = offset(&u, terms);
                    let cell = &mut taken[slot_to_taken[*tensor]].as_mut_slice()[off];
                    *cell = op.apply(*cell, v);
                    writes += 1;
                    if *op != AssignOp::Overwrite {
                        flops += 1;
                    }
                }
                pc += 1;
            }
            Instr::FoldWriteScalar { slot, bin, op, srcs, check_miss } => {
                let (first, rest) = srcs.split_first().expect("folds have operands");
                let mut v = f[*first];
                for s in rest {
                    v = bin.apply(v, f[*s]);
                }
                flops += rest.len() as u64;
                if !(*check_miss && missing) {
                    f[*slot] = op.apply(f[*slot], v);
                    if *op != AssignOp::Overwrite {
                        flops += 1;
                    }
                }
                pc += 1;
            }
            Instr::InitScalar { slot, val } => {
                f[*slot] = *val;
                pc += 1;
            }
            Instr::VecDenseLoop { idx, extent, lo, hi, items } => {
                let (lo_v, hi_v) = clamp_bounds(&u, lo, hi, *extent as i64 - 1);
                if lo_v <= hi_v {
                    let iters = (hi_v - lo_v + 1) as u64;
                    iterations += iters;
                    vec_prepare(
                        items,
                        &u,
                        iters,
                        &mut vec_pass,
                        &mut vec_bases,
                        &mut reads,
                        &mut flops,
                        &mut writes,
                    );
                    for j in lo_v as usize..=hi_v as usize {
                        u[*idx] = j;
                        vec_exec_items(
                            items,
                            j,
                            None,
                            &vec_pass,
                            &vec_bases,
                            &mut f,
                            &dense,
                            &mut taken,
                            &slot_to_taken,
                        );
                    }
                }
                pc += 1;
            }
            Instr::VecSparseLoop { tensor, level, idx, parent, lo, hi, items } => {
                let p = u[*parent];
                if p != MISS {
                    let bind = sparse[*tensor].as_ref().expect("driver tensors are sparse inputs");
                    let LevelView::Sparse { pos, crd, .. } = bind.levels[*level] else {
                        unreachable!("vector sparse loop over a non-sparse level");
                    };
                    let (lo_v, hi_v) = clamp_bounds(&u, lo, hi, i64::MAX);
                    let begin = pos[p];
                    let fiber_end = pos[p + 1];
                    let slice = &crd[begin..fiber_end];
                    let start = begin + slice.partition_point(|&c| (c as i64) < lo_v);
                    let stop = begin + slice.partition_point(|&c| (c as i64) <= hi_v);
                    if start < stop {
                        let iters = (stop - start) as u64;
                        iterations += iters;
                        vec_prepare(
                            items,
                            &u,
                            iters,
                            &mut vec_pass,
                            &mut vec_bases,
                            &mut reads,
                            &mut flops,
                            &mut writes,
                        );
                        let vals = bind.vals;
                        for (pos, &coord) in crd.iter().enumerate().take(stop).skip(start) {
                            u[*idx] = coord;
                            vec_exec_items(
                                items,
                                coord,
                                Some((vals, pos)),
                                &vec_pass,
                                &vec_bases,
                                &mut f,
                                &dense,
                                &mut taken,
                                &slot_to_taken,
                            );
                        }
                    }
                }
                pc += 1;
            }
            Instr::Halt => break,
        }
    }

    let mut counters = Counters::new();
    for (slot, count) in reads.iter().enumerate() {
        if *count > 0 {
            counters.reads.insert(program.tensors[slot].name.clone(), *count);
        }
    }
    counters.flops = flops;
    counters.writes = writes;
    counters.iterations = iterations;
    Ok(counters)
}

fn check_dims(name: &str, expected: &[usize], got: &[usize]) -> Result<(), ExecError> {
    if expected == got {
        Ok(())
    } else {
        Err(ExecError::BindingShapeMismatch {
            name: name.to_string(),
            expected: expected.to_vec(),
            got: got.to_vec(),
        })
    }
}
