//! Compilation of a [`LoweredProgram`] into flat bytecode.
//!
//! Everything the interpreter resolves per visit — name lookups are
//! already gone after lowering, but enum-dispatch on statement and
//! expression nodes, per-step level-format dispatch, and `Option`-boxed
//! path positions remain — is resolved here once:
//!
//! * loop heads are monomorphized per driver level format,
//! * strided addresses carry their strides inline,
//! * expressions become three-address code over a flat `f64` file,
//! * path positions become plain `usize` registers with a sentinel.

use std::collections::HashMap;

use systec_exec::lowered::{LBound, LCond, LExpr, LStmt, LTarget, SlotKind};
use systec_exec::{ExecError, LoweredProgram};
use systec_tensor::{DenseTensor, LevelFormat, Tensor};

use systec_ir::{AssignOp, CmpOp};

use crate::bytecode::{
    Bound, BytecodeProgram, Instr, ParOut, SplitInfo, TensorInfo, Term, VItem, VStep, MISS,
};

/// Per-slot compile-time binding info.
enum SlotLayout {
    Dense { strides: Vec<usize> },
    Sparse { formats: Vec<LevelFormat> },
    Output { strides: Vec<usize> },
}

pub(crate) fn compile(
    program: &LoweredProgram,
    inputs: &HashMap<String, Tensor>,
    outputs: &HashMap<String, DenseTensor>,
) -> Result<BytecodeProgram, ExecError> {
    // Resolve each tensor slot's layout from the concrete bindings (the
    // plan key pins formats and shapes, so baking them in is sound).
    let mut layouts = Vec::with_capacity(program.tensors.len());
    let mut infos = Vec::with_capacity(program.tensors.len());
    for slot in &program.tensors {
        let (layout, dims) = match slot.kind {
            SlotKind::DenseInput => match inputs.get(&slot.name) {
                Some(Tensor::Dense(t)) => {
                    (SlotLayout::Dense { strides: t.strides().to_vec() }, t.dims().to_vec())
                }
                _ => return Err(ExecError::UnknownTensor { name: slot.name.clone() }),
            },
            SlotKind::SparseInput => match inputs.get(&slot.name) {
                Some(Tensor::Sparse(t)) => {
                    (SlotLayout::Sparse { formats: t.formats().to_vec() }, t.dims().to_vec())
                }
                _ => return Err(ExecError::UnknownTensor { name: slot.name.clone() }),
            },
            SlotKind::Output => match outputs.get(&slot.name) {
                Some(t) => {
                    (SlotLayout::Output { strides: t.strides().to_vec() }, t.dims().to_vec())
                }
                None => return Err(ExecError::UnknownTensor { name: slot.name.clone() }),
            },
        };
        layouts.push(layout);
        infos.push(TensorInfo { name: slot.name.clone(), kind: slot.kind, dims });
    }

    // Flattened binding-table layout: one run of level views per sparse
    // slot, one output ordinal per output slot.
    let n_slots = program.tensors.len();
    let mut level_base = vec![0usize; n_slots];
    let mut n_levels = 0usize;
    let mut out_ordinal = vec![usize::MAX; n_slots];
    let mut n_outputs = 0usize;
    for (slot, layout) in layouts.iter().enumerate() {
        match layout {
            SlotLayout::Sparse { formats } => {
                level_base[slot] = n_levels;
                n_levels += formats.len();
            }
            SlotLayout::Output { .. } => {
                out_ordinal[slot] = n_outputs;
                n_outputs += 1;
            }
            SlotLayout::Dense { .. } => {}
        }
    }

    let split_pending = analyze_split(program);

    // `u` register layout: index slots, then path positions, then loop
    // counters (allocated on demand).
    let n_idx = program.indices.len();
    let mut pos_base = Vec::with_capacity(program.accesses.len());
    let mut u_init = vec![0usize; n_idx];
    for access in &program.accesses {
        pos_base.push(u_init.len());
        u_init.push(0); // root position
        u_init.extend(std::iter::repeat_n(MISS, access.rank));
    }

    // Pre-scan: which scalar slots are assignment targets (those can
    // never be alias-elided), and which literal constants appear (they
    // load once into a pooled register in the prologue).
    let mut written = vec![false; program.n_scalars];
    let mut const_pool: Vec<f64> = Vec::new();
    let mut const_ids: HashMap<u64, usize> = HashMap::new();
    prescan(&program.root, &mut written, &mut |v: f64| {
        const_ids.entry(v.to_bits()).or_insert_with(|| {
            const_pool.push(v);
            const_pool.len() - 1
        });
    });
    let const_base = program.n_scalars;

    let never_miss = program
        .accesses
        .iter()
        .map(|a| {
            let mut levels = vec![false; a.rank + 1];
            levels[0] = true; // the root position is always stored
            levels
        })
        .collect();
    let mut c = Compiler {
        program,
        layouts: &layouts,
        pos_base,
        u_init,
        instrs: Vec::new(),
        labels: Vec::new(),
        written,
        alias: (0..program.n_scalars).collect(),
        const_ids,
        const_base,
        temp_base: const_base + const_pool.len(),
        temp_next: 0,
        temp_max: 0,
        tables: Vec::new(),
        n_caches: 0,
        n_vec_items: 0,
        n_vec_bases: 0,
        n_vec_gathers: 0,
        never_miss,
        split_pending,
        split_heads: Vec::new(),
        loop_depth: 0,
    };
    // Prologue: materialize the constant pool.
    for (k, v) in const_pool.iter().enumerate() {
        c.emit(Instr::Const { dst: const_base + k, val: *v });
    }
    c.stmt(&program.root);
    c.emit(Instr::Halt);
    c.resolve_labels();

    let split = match c.split_pending {
        Some(p) if c.split_heads.len() == p.n_heads => Some(SplitInfo {
            heads: c.split_heads,
            owned_extent: p.owned_extent,
            outputs: p.outputs,
        }),
        _ => None,
    };

    Ok(BytecodeProgram {
        instrs: c.instrs,
        u_init: c.u_init,
        n_f: c.temp_base + c.temp_max,
        tables: c.tables,
        tensors: infos,
        n_caches: c.n_caches,
        n_vec_items: c.n_vec_items,
        n_vec_bases: c.n_vec_bases,
        n_vec_gathers: c.n_vec_gathers,
        level_base,
        n_levels,
        out_ordinal,
        n_outputs,
        split,
    })
}

/// Accumulated access pattern of one output slot across the top-level
/// loops, relative to each loop's own index.
#[derive(Clone, Copy, Default)]
struct OutAcc {
    row_write: bool,
    nonrow_write: bool,
    row_read: bool,
    nonrow_read: bool,
    /// First write operator seen, and whether all writes used it.
    op: Option<AssignOp>,
    mixed_ops: bool,
}

impl OutAcc {
    fn record_op(&mut self, op: AssignOp) {
        match self.op {
            None => self.op = Some(op),
            Some(prev) if prev == op => {}
            Some(_) => self.mixed_ops = true,
        }
    }
}

/// What the analysis proved before compilation assigns head pcs.
struct PendingSplit {
    /// Number of non-empty top-level loops (compilation must emit
    /// exactly this many heads or the split is dropped).
    n_heads: usize,
    owned_extent: Option<usize>,
    outputs: Vec<(usize, ParOut)>,
}

/// Decides whether the program may execute row-parallel: the root must
/// be a sequence of loops, and every output the loops touch must either
/// be addressed with the enclosing loop's index as its leading
/// subscript (disjoint row slices per chunk) or be written exclusively
/// through one mergeable reduction operator and never read (private
/// per-worker buffers merged after the join). Anything else — overwrite
/// stores to shared rows, reads of reduced outputs, non-loop statements
/// at the root — keeps the program serial.
fn analyze_split(program: &LoweredProgram) -> Option<PendingSplit> {
    let mut loops = Vec::new();
    if !collect_top_loops(&program.root, &mut loops) {
        return None;
    }
    // Statically empty loops compile to nothing; they neither get a head
    // nor touch an output.
    let active: Vec<&LStmt> = loops
        .into_iter()
        .filter(|l| matches!(l, LStmt::Loop { extent, .. } if *extent > 0))
        .collect();
    if active.is_empty() {
        return None;
    }

    let mut accs: Vec<OutAcc> = vec![OutAcc::default(); program.tensors.len()];
    let mut extents = Vec::with_capacity(active.len());
    for l in &active {
        let LStmt::Loop { idx, extent, body, .. } = l else { unreachable!() };
        extents.push(*extent);
        classify_stmt(body, *idx, &mut accs);
    }

    let mut outputs = Vec::new();
    let mut owned_any = false;
    for (slot, acc) in accs.iter().enumerate() {
        let touched = acc.row_write || acc.nonrow_write || acc.row_read || acc.nonrow_read;
        if !touched {
            continue;
        }
        if acc.nonrow_read {
            // Reads of rows other chunks may be writing.
            return None;
        }
        let mode = if acc.nonrow_write {
            // Reductions scattered across rows: need one mergeable
            // operator for every store, and no reads at all (workers
            // reduce into identity-initialized private buffers, so a
            // read would not see the accumulated value).
            if acc.row_read || acc.mixed_ops {
                return None;
            }
            let op = acc.op.expect("a write was recorded");
            op.identity()?; // Overwrite has none: order-dependent, not mergeable
            ParOut::Reduced(op)
        } else {
            owned_any = true;
            ParOut::Owned
        };
        outputs.push((slot, mode));
    }

    let owned_extent = if owned_any {
        // Owned row boundaries must coincide across every split loop.
        let e = extents[0];
        if extents.iter().any(|&x| x != e) {
            return None;
        }
        Some(e)
    } else {
        None
    };
    Some(PendingSplit { n_heads: active.len(), owned_extent, outputs })
}

/// Collects the top-level loops of (possibly nested) sequences; `false`
/// when anything other than loops appears at the root.
fn collect_top_loops<'a>(stmt: &'a LStmt, out: &mut Vec<&'a LStmt>) -> bool {
    match stmt {
        LStmt::Seq(ss) => ss.iter().all(|s| collect_top_loops(s, out)),
        LStmt::Loop { .. } => {
            out.push(stmt);
            true
        }
        _ => false,
    }
}

/// Records how outputs are accessed under one top-level loop, keyed to
/// whether each access's leading subscript is that loop's index.
fn classify_stmt(stmt: &LStmt, idx: usize, accs: &mut [OutAcc]) {
    match stmt {
        LStmt::Seq(ss) => {
            for s in ss {
                classify_stmt(s, idx, accs);
            }
        }
        LStmt::Loop { body, .. } | LStmt::If { body, .. } | LStmt::Workspace { body, .. } => {
            classify_stmt(body, idx, accs)
        }
        LStmt::Let { value, body, .. } => {
            classify_expr(value, idx, accs);
            classify_stmt(body, idx, accs);
        }
        LStmt::Assign { target, op, rhs, .. } => {
            classify_expr(rhs, idx, accs);
            if let LTarget::Output { tensor, modes } = target {
                let acc = &mut accs[*tensor];
                if modes.first() == Some(&idx) {
                    acc.row_write = true;
                } else {
                    acc.nonrow_write = true;
                }
                acc.record_op(*op);
            }
        }
    }
}

fn classify_expr(e: &LExpr, idx: usize, accs: &mut [OutAcc]) {
    match e {
        LExpr::ReadOutput { tensor, modes } => {
            let acc = &mut accs[*tensor];
            if modes.first() == Some(&idx) {
                acc.row_read = true;
            } else {
                acc.nonrow_read = true;
            }
        }
        LExpr::Call { args, .. } => {
            for a in args {
                classify_expr(a, idx, accs);
            }
        }
        LExpr::Lookup { index, .. } => classify_expr(index, idx, accs),
        _ => {}
    }
}

/// Walks the lowered tree recording scalar assignment targets and every
/// literal operand.
fn prescan(stmt: &LStmt, written: &mut [bool], on_lit: &mut impl FnMut(f64)) {
    fn expr(e: &LExpr, on_lit: &mut impl FnMut(f64)) {
        match e {
            LExpr::Lit(v) => on_lit(*v),
            LExpr::Call { args, .. } => {
                for a in args {
                    expr(a, on_lit);
                }
            }
            LExpr::Lookup { index, .. } => expr(index, on_lit),
            _ => {}
        }
    }
    match stmt {
        LStmt::Seq(ss) => {
            for s in ss {
                prescan(s, written, on_lit);
            }
        }
        LStmt::Loop { body, .. } | LStmt::If { body, .. } | LStmt::Workspace { body, .. } => {
            prescan(body, written, on_lit);
        }
        LStmt::Let { value, body, .. } => {
            expr(value, on_lit);
            prescan(body, written, on_lit);
        }
        LStmt::Assign { target, rhs, .. } => {
            if let LTarget::Scalar(slot) = target {
                written[*slot] = true;
            }
            expr(rhs, on_lit);
        }
    }
}

#[derive(Clone, Copy)]
struct Label(usize);

/// Accumulates vector-loop items during [`Compiler::try_vectorize`]:
/// steps gather under the current guard; a guard change seals the open
/// steps into an item.
struct VecBuilder {
    items: Vec<VItem>,
    open_guard: Vec<(CmpOp, usize, usize)>,
    open_steps: Vec<VStep>,
}

impl VecBuilder {
    fn flush(&mut self, c: &mut Compiler<'_>) {
        if !self.open_steps.is_empty() {
            let steps: Box<[VStep]> = std::mem::take(&mut self.open_steps).into();
            // Fused-body selection: recognize the common load/fold
            // shapes and attach their monomorphized form alongside the
            // step list (the VM picks at loop entry; see crate::fuse).
            let fuse_span = systec_telemetry::span(systec_telemetry::Phase::Fuse);
            let fused = crate::fuse::fuse_item(&steps);
            drop(fuse_span);
            self.items.push(VItem {
                id: c.alloc_vec_item(),
                guard: self.open_guard.clone().into(),
                steps,
                fused,
            });
        }
    }

    fn push_guard(&mut self, c: &mut Compiler<'_>, conjuncts: Vec<(CmpOp, usize, usize)>) {
        self.flush(c);
        self.open_guard.extend(conjuncts);
    }

    fn pop_guard(&mut self, c: &mut Compiler<'_>, depth: usize) {
        self.flush(c);
        self.open_guard.truncate(depth);
    }
}

/// One tracked access a vector loop binds per coordinate.
#[derive(Clone, Copy, PartialEq, Eq)]
struct VecAccess {
    access: usize,
    level: usize,
    tensor: usize,
}

/// The sparse accesses a candidate vector loop iterates: an optional
/// driver (compressed or run-length) and, for two-way intersections,
/// the probed access merged against the driver's coordinates.
#[derive(Clone, Copy)]
struct VecShape {
    driver: Option<VecAccess>,
    /// The driver walks a run-length level (else compressed).
    rle: bool,
    probe: Option<VecAccess>,
}

/// Flattens a guard into a conjunction of comparisons over registers
/// other than the loop's own index. `false` = not flattenable.
fn flatten_guard(cond: &LCond, idx: usize, out: &mut Vec<(CmpOp, usize, usize)>) -> bool {
    match cond {
        LCond::True => true,
        LCond::Cmp(op, a, b) => {
            if *a == idx || *b == idx {
                return false;
            }
            out.push((*op, *a, *b));
            true
        }
        LCond::And(cs) => cs.iter().all(|c| flatten_guard(c, idx, out)),
        LCond::Or(_) => false,
    }
}

struct Compiler<'a> {
    program: &'a LoweredProgram,
    layouts: &'a [SlotLayout],
    /// `u` register of `paths[access][level]` is `pos_base[access] + level`.
    pos_base: Vec<usize>,
    u_init: Vec<usize>,
    instrs: Vec<Instr>,
    /// Label targets; jump fields hold label ids until
    /// [`Compiler::resolve_labels`] rewrites them to program counters.
    labels: Vec<Option<usize>>,
    /// Scalar slots that are assignment targets (never alias-elided).
    written: Vec<bool>,
    /// Canonical register of each scalar slot: identity, except for
    /// `let s2 = s1` bindings of never-reassigned scalars, which resolve
    /// straight to `s1` with no copy instruction.
    alias: Vec<usize>,
    /// Literal value (bits) → index into the constant pool.
    const_ids: HashMap<u64, usize>,
    const_base: usize,
    temp_base: usize,
    temp_next: usize,
    temp_max: usize,
    tables: Vec<Box<[f64]>>,
    n_caches: usize,
    n_vec_items: usize,
    n_vec_bases: usize,
    n_vec_gathers: usize,
    /// Per (access, level): whether the position register is provably
    /// never [`MISS`] in the current scope — levels bound by a driver
    /// loop, or dense-level probes of a never-miss parent. Enables
    /// eliding the sentinel checks on the hot path.
    never_miss: Vec<Vec<bool>>,
    /// The row-parallel proof from [`analyze_split`], if any.
    split_pending: Option<PendingSplit>,
    /// Emitted top-level head `(pc, extent)` pairs (only collected when
    /// a split is pending).
    split_heads: Vec<(usize, usize)>,
    /// Loop nesting depth of the statement being compiled.
    loop_depth: usize,
}

impl Compiler<'_> {
    fn emit(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    fn bind(&mut self, l: Label) {
        debug_assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.instrs.len());
    }

    fn alloc_u(&mut self) -> usize {
        self.u_init.push(0);
        self.u_init.len() - 1
    }

    fn alloc_temp(&mut self) -> usize {
        let t = self.temp_base + self.temp_next;
        self.temp_next += 1;
        self.temp_max = self.temp_max.max(self.temp_next);
        t
    }

    fn const_reg(&self, v: f64) -> usize {
        self.const_base + self.const_ids[&v.to_bits()]
    }

    fn alloc_cache(&mut self) -> usize {
        self.n_caches += 1;
        self.n_caches - 1
    }

    fn strides_of(&self, tensor: usize) -> &[usize] {
        match &self.layouts[tensor] {
            SlotLayout::Dense { strides } | SlotLayout::Output { strides } => strides,
            SlotLayout::Sparse { .. } => unreachable!("strided access to a sparse slot"),
        }
    }

    fn terms(&self, tensor: usize, modes: &[usize]) -> Box<[Term]> {
        let strides = self.strides_of(tensor);
        modes.iter().zip(strides).map(|(&reg, &stride)| Term { reg, stride }).collect()
    }

    fn bounds(&self, bounds: &[LBound]) -> Box<[Bound]> {
        bounds.iter().map(|b| Bound { reg: b.idx, delta: b.delta }).collect()
    }

    fn stmt(&mut self, stmt: &LStmt) {
        match stmt {
            LStmt::Seq(ss) => {
                for s in ss {
                    self.stmt(s);
                }
            }
            LStmt::Loop { idx, extent, lo, hi, drivers, probes, body } => {
                if *extent == 0 {
                    return; // statically empty, as in the interpreter
                }
                // A splittable top-level loop records its head's pc —
                // every head kind (counted, compressed, run-length, or a
                // whole vectorized loop) accepts the chunk coordinate
                // window at run time.
                let top_split = self.loop_depth == 0 && self.split_pending.is_some();
                let head_pc = self.instrs.len();
                // At most one extra tracked access (a second driver or a
                // probe) can vectorize, as the probed side of a two-way
                // intersection; more take the general path.
                let vec_extra = match (drivers.as_slice(), probes.as_slice()) {
                    ([] | [_], []) => Some(None),
                    ([_, p], []) | ([_], [p]) => Some(Some(p)),
                    _ => None,
                };
                if let Some(probe) = vec_extra {
                    if self.try_vectorize(*idx, *extent, lo, hi, drivers.first(), probe, body) {
                        if top_split {
                            self.split_heads.push((head_pc, *extent));
                        }
                        return;
                    }
                }
                if top_split {
                    self.split_heads.push((head_pc, *extent));
                }
                let exit = self.new_label();
                let lo = self.bounds(lo);
                let hi = self.bounds(hi);
                // The loop's advance instruction, emitted after the body.
                enum Next {
                    Dense {
                        idx: usize,
                        cur: usize,
                        end: usize,
                    },
                    Sparse {
                        cache: usize,
                        idx: usize,
                        child: usize,
                        cur: usize,
                        end: usize,
                    },
                    Rle {
                        cache: usize,
                        idx: usize,
                        child: usize,
                        run: usize,
                        run_end: usize,
                        coord: usize,
                        hi_reg: usize,
                    },
                }
                let next = if let Some(driver) = drivers.first() {
                    let access = &self.program.accesses[driver.access];
                    let tensor = access.tensor;
                    let SlotLayout::Sparse { formats } = &self.layouts[tensor] else {
                        unreachable!("drivers are sparse inputs");
                    };
                    let parent = self.pos_base[driver.access] + driver.level;
                    let child = parent + 1;
                    let cache = self.alloc_cache();
                    match formats[driver.level] {
                        LevelFormat::Sparse => {
                            let (cur, end) = (self.alloc_u(), self.alloc_u());
                            self.emit(Instr::SparseLoopHead {
                                tensor,
                                level: driver.level,
                                cache,
                                idx: *idx,
                                parent,
                                child,
                                cur,
                                end,
                                lo,
                                hi,
                                exit: exit.0,
                            });
                            Next::Sparse { cache, idx: *idx, child, cur, end }
                        }
                        LevelFormat::RunLength => {
                            let (run, run_end, coord, hi_reg) =
                                (self.alloc_u(), self.alloc_u(), self.alloc_u(), self.alloc_u());
                            self.emit(Instr::RleLoopHead {
                                tensor,
                                level: driver.level,
                                cache,
                                idx: *idx,
                                parent,
                                child,
                                run,
                                run_end,
                                coord,
                                hi_reg,
                                lo,
                                hi,
                                exit: exit.0,
                            });
                            Next::Rle { cache, idx: *idx, child, run, run_end, coord, hi_reg }
                        }
                        LevelFormat::Dense => unreachable!("dense levels never drive"),
                    }
                } else {
                    let (cur, end) = (self.alloc_u(), self.alloc_u());
                    self.emit(Instr::DenseLoopHead {
                        idx: *idx,
                        cur,
                        end,
                        extent: *extent,
                        lo,
                        hi,
                        exit: exit.0,
                    });
                    Next::Dense { idx: *idx, cur, end }
                };

                // Scope the never-miss facts this loop establishes.
                let mut saved: Vec<(usize, usize, bool)> = Vec::new();
                let mut set_flag = |c: &mut Self, access: usize, level: usize, value: bool| {
                    saved.push((access, level + 1, c.never_miss[access][level + 1]));
                    c.never_miss[access][level + 1] = value;
                };
                if let Some(driver) = drivers.first() {
                    // The driver loop binds this level to stored
                    // positions only.
                    set_flag(self, driver.access, driver.level, true);
                }

                // Per-iteration entry point: advance the remaining
                // tracked accesses at the just-bound coordinate.
                let again = self.new_label();
                self.bind(again);
                for advance in drivers.iter().skip(1).chain(probes) {
                    let tensor = self.program.accesses[advance.access].tensor;
                    let parent = self.pos_base[advance.access] + advance.level;
                    // A probe into a dense level of a never-miss parent
                    // always lands on a stored position.
                    let SlotLayout::Sparse { formats } = &self.layouts[tensor] else {
                        unreachable!("probed tensors are sparse inputs");
                    };
                    let parent_safe = self.never_miss[advance.access][advance.level];
                    let dense_level = formats[advance.level] == LevelFormat::Dense;
                    set_flag(self, advance.access, advance.level, parent_safe && dense_level);
                    self.emit(Instr::Probe {
                        tensor,
                        level: advance.level,
                        parent,
                        child: parent + 1,
                        idx: *idx,
                    });
                }
                self.loop_depth += 1;
                self.stmt(body);
                self.loop_depth -= 1;
                for (access, level, old) in saved {
                    self.never_miss[access][level] = old;
                }
                match next {
                    Next::Dense { idx, cur, end } => {
                        self.emit(Instr::DenseLoopNext { idx, cur, end, back: again.0 });
                    }
                    Next::Sparse { cache, idx, child, cur, end } => {
                        self.emit(Instr::SparseLoopNext {
                            cache,
                            idx,
                            child,
                            cur,
                            end,
                            back: again.0,
                        });
                    }
                    Next::Rle { cache, idx, child, run, run_end, coord, hi_reg } => {
                        self.emit(Instr::RleLoopNext {
                            cache,
                            idx,
                            child,
                            run,
                            run_end,
                            coord,
                            hi_reg,
                            back: again.0,
                        });
                    }
                }
                self.bind(exit);
            }
            LStmt::If { cond, body } => {
                let done = self.new_label();
                self.cond_false_jump(cond, done);
                self.stmt(body);
                self.bind(done);
            }
            LStmt::Let { slot, value, skip_if_missing, body } => {
                // A `let` that merely renames a never-reassigned scalar
                // (LICM alias chains) compiles to nothing: the body reads
                // the source register directly.
                if skip_if_missing.is_none() {
                    if let LExpr::Scalar(src) = value {
                        let canonical = self.alias[*src];
                        if !self.written[*slot] && !self.written[canonical] {
                            self.alias[*slot] = canonical;
                            self.stmt(body);
                            return;
                        }
                    }
                }
                let done = self.new_label();
                if let Some(access) = skip_if_missing {
                    // When every level of the access is driver-bound (or
                    // a dense probe), the leaf cannot miss: the guard is
                    // dead and the body always runs.
                    let rank = self.program.accesses[*access].rank;
                    if !self.never_miss[*access][rank] {
                        let leaf = self.pos_base[*access] + rank;
                        self.emit(Instr::JumpIfUMiss { reg: leaf, to: done.0 });
                    }
                }
                let mark = self.temp_next;
                self.expr(value, *slot);
                self.temp_next = mark;
                self.stmt(body);
                self.bind(done);
            }
            LStmt::Workspace { slot, init, body } => {
                self.emit(Instr::InitScalar { slot: *slot, val: *init });
                self.stmt(body);
            }
            LStmt::Assign { target, op, rhs, can_miss } => {
                let mark = self.temp_next;
                let skip = self.new_label();
                if *can_miss {
                    self.emit(Instr::ClearMiss);
                }
                // A top-level application fuses with the store — the
                // dominant `w += t * x[j]` shape becomes one binary
                // fused write, and an n-ary product-and-accumulate
                // becomes one fold-write. Flop accounting is unchanged:
                // the fused forms count every fold op and the reduction,
                // exactly as the interpreter evaluates the full
                // right-hand side before its miss check.
                let fused = match rhs {
                    LExpr::Call { op: bin, args } if args.len() >= 2 => {
                        let regs: Vec<usize> = args.iter().map(|a| self.expr_reg(a)).collect();
                        Some((*bin, regs))
                    }
                    _ => None,
                };
                let src = if fused.is_none() { self.expr_reg(rhs) } else { 0 };
                if *can_miss && fused.is_none() {
                    // The fused forms check the flag themselves.
                    self.emit(Instr::JumpIfMiss { to: skip.0 });
                }
                match (target, fused) {
                    (LTarget::Output { tensor, modes }, Some((bin, regs))) => {
                        let terms = self.terms(*tensor, modes);
                        if let [a, b] = regs.as_slice() {
                            self.emit(Instr::FusedWriteOutput {
                                tensor: *tensor,
                                terms,
                                bin,
                                op: *op,
                                a: *a,
                                b: *b,
                                check_miss: *can_miss,
                            });
                        } else {
                            self.emit(Instr::FoldWriteOutput {
                                tensor: *tensor,
                                terms,
                                bin,
                                op: *op,
                                srcs: regs.into(),
                                check_miss: *can_miss,
                            });
                        }
                    }
                    (LTarget::Output { tensor, modes }, None) => {
                        let terms = self.terms(*tensor, modes);
                        self.emit(Instr::WriteOutput { tensor: *tensor, terms, op: *op, src });
                    }
                    (LTarget::Scalar(slot), Some((bin, regs))) => {
                        if let [a, b] = regs.as_slice() {
                            self.emit(Instr::FusedWriteScalar {
                                slot: *slot,
                                bin,
                                op: *op,
                                a: *a,
                                b: *b,
                                check_miss: *can_miss,
                            });
                        } else {
                            self.emit(Instr::FoldWriteScalar {
                                slot: *slot,
                                bin,
                                op: *op,
                                srcs: regs.into(),
                                check_miss: *can_miss,
                            });
                        }
                    }
                    (LTarget::Scalar(slot), None) => {
                        self.emit(Instr::WriteScalar { slot: *slot, op: *op, src });
                    }
                }
                self.bind(skip);
                self.temp_next = mark;
            }
        }
    }

    /// Attempts to compile an innermost loop as one vector-loop
    /// instruction. Returns `false` (emitting nothing) when the body
    /// does not conform; the caller then uses the general path.
    ///
    /// Conforming bodies contain only: guards that are conjunctions of
    /// comparisons over *outer* indices (loop-invariant after
    /// hoisting), `let`s binding dense reads, the driver's value, the
    /// probed value, or random-access gathers, and assignments folding
    /// scalars / literals / any of those loads. Drivers may walk a
    /// compressed or run-length level; one extra tracked access at a
    /// compressed level becomes the probed side of a two-way
    /// intersection. Miss bookkeeping for probes and gathers uses the
    /// per-coordinate flag described on [`VStep`].
    #[allow(clippy::too_many_arguments)]
    fn try_vectorize(
        &mut self,
        idx: usize,
        extent: usize,
        lo: &[LBound],
        hi: &[LBound],
        driver: Option<&systec_exec::lowered::Advance>,
        probe: Option<&systec_exec::lowered::Advance>,
        body: &LStmt,
    ) -> bool {
        let driver_info = match driver {
            Some(d) => {
                let tensor = self.program.accesses[d.access].tensor;
                let SlotLayout::Sparse { formats } = &self.layouts[tensor] else {
                    return false;
                };
                let acc = VecAccess { access: d.access, level: d.level, tensor };
                match formats[d.level] {
                    LevelFormat::Sparse => Some((acc, false)),
                    // Runs expand coordinate by coordinate; the probed
                    // merge is only defined against a compressed driver.
                    LevelFormat::RunLength if probe.is_none() => Some((acc, true)),
                    _ => return false,
                }
            }
            None if probe.is_some() => return false,
            None => None,
        };
        // The probed side of an intersection may walk any level format:
        // the VM's forward-only probe cursor handles compressed, dense
        // and run-length fibers alike.
        let probe_info = match probe {
            Some(p) => {
                let tensor = self.program.accesses[p.access].tensor;
                let SlotLayout::Sparse { .. } = &self.layouts[tensor] else {
                    return false;
                };
                Some(VecAccess { access: p.access, level: p.level, tensor })
            }
            None => None,
        };
        let shape = VecShape {
            driver: driver_info.map(|(a, _)| a),
            rle: driver_info.is_some_and(|(_, rle)| rle),
            probe: probe_info,
        };

        let mut builder =
            VecBuilder { items: Vec::new(), open_guard: Vec::new(), open_steps: Vec::new() };
        let saved = (self.temp_next, self.n_vec_items, self.n_vec_bases, self.n_vec_gathers);
        let ok = self.vec_stmt(body, idx, shape, &mut builder);
        let restore = |c: &mut Self| {
            (c.temp_next, c.n_vec_items, c.n_vec_bases, c.n_vec_gathers) = saved;
        };
        if !ok {
            restore(self);
            return false;
        }
        builder.flush(self);
        if builder.items.is_empty() {
            restore(self);
            return false;
        }
        let items: Box<[crate::bytecode::VItem]> = builder.items.into();
        let lo = self.bounds(lo);
        let hi = self.bounds(hi);
        match (shape.driver, shape.probe) {
            (Some(d), Some(p)) => {
                let parent = self.pos_base[d.access] + d.level;
                let probe_parent = self.pos_base[p.access] + p.level;
                // The dominant `acc op= bin(driver, probe)` body is now
                // covered by the general fused-body selection
                // (`FusedBody::Dot` on the item), so intersection, RLE
                // and plain drivers all share one body-selection path.
                self.emit(Instr::VecIsectLoop {
                    tensor: d.tensor,
                    level: d.level,
                    idx,
                    parent,
                    probe_tensor: p.tensor,
                    probe_level: p.level,
                    probe_parent,
                    lo,
                    hi,
                    items,
                });
            }
            (Some(d), None) => {
                let parent = self.pos_base[d.access] + d.level;
                let (tensor, level) = (d.tensor, d.level);
                if shape.rle {
                    self.emit(Instr::VecRleLoop { tensor, level, idx, parent, lo, hi, items });
                } else {
                    self.emit(Instr::VecSparseLoop { tensor, level, idx, parent, lo, hi, items });
                }
            }
            (None, _) => {
                self.emit(Instr::VecDenseLoop { idx, extent, lo, hi, items });
            }
        }
        self.temp_next = saved.0;
        true
    }

    /// Walks a vector-loop body, appending steps; `false` = bail.
    fn vec_stmt(&mut self, stmt: &LStmt, idx: usize, shape: VecShape, b: &mut VecBuilder) -> bool {
        match stmt {
            LStmt::Seq(ss) => ss.iter().all(|s| self.vec_stmt(s, idx, shape, b)),
            LStmt::If { cond, body } => {
                let mut conjuncts = Vec::new();
                if !flatten_guard(cond, idx, &mut conjuncts) {
                    return false;
                }
                let depth = b.open_guard.len();
                b.push_guard(self, conjuncts);
                let ok = self.vec_stmt(body, idx, shape, b);
                b.pop_guard(self, depth);
                ok
            }
            LStmt::Let { slot, value, skip_if_missing, body } => {
                if let LExpr::Scalar(src) = value {
                    // Alias-elidable let, as in the general path.
                    if skip_if_missing.is_none() {
                        let canonical = self.alias[*src];
                        if !self.written[*slot] && !self.written[canonical] {
                            self.alias[*slot] = canonical;
                            return self.vec_stmt(body, idx, shape, b);
                        }
                    }
                    return false;
                }
                if let Some(access) = skip_if_missing {
                    // Only a driver binding (which cannot miss) may carry
                    // a skip guard; a skip on the probed access would
                    // need per-coordinate predication of the whole body.
                    let rank = self.program.accesses[*access].rank;
                    if !(Some(*access) == shape.driver.map(|d| d.access)
                        && self.never_miss_leaf(*access, rank, shape.driver))
                    {
                        return false;
                    }
                }
                if !self.vec_load_into(value, *slot, idx, shape, b, false, &mut false) {
                    return false;
                }
                self.vec_stmt(body, idx, shape, b)
            }
            LStmt::Assign { target, op, rhs, can_miss } => {
                // Operand loads that can actually miss (probes, gathers)
                // raise the per-coordinate flag; the fold step then
                // guards its store exactly like the interpreter's
                // miss-checked assignment. Bodies without such operands
                // keep the unguarded form (and its bulk counters).
                let (bin, args): (systec_ir::BinOp, Vec<&LExpr>) = match rhs {
                    LExpr::Call { op: bin, args } if args.len() >= 2 => {
                        (*bin, args.iter().collect())
                    }
                    simple => (systec_ir::BinOp::Add, vec![simple]),
                };
                let mut srcs = Vec::with_capacity(args.len());
                let mut missable = false;
                for a in args {
                    match self.vec_operand(a, idx, shape, b, &mut missable) {
                        Some(r) => srcs.push(r),
                        None => return false,
                    }
                }
                let check_miss = *can_miss && missable;
                match target {
                    LTarget::Output { tensor, modes } => {
                        let (base, stride) = self.split_terms(*tensor, modes, idx);
                        let id = self.alloc_vec_base();
                        b.open_steps.push(VStep::FoldOut {
                            tensor: *tensor,
                            id,
                            base,
                            stride,
                            bin,
                            op: *op,
                            srcs: srcs.into(),
                            check_miss,
                        });
                        true
                    }
                    LTarget::Scalar(slot) => {
                        b.open_steps.push(VStep::FoldScalar {
                            slot: *slot,
                            bin,
                            op: *op,
                            srcs: srcs.into(),
                            check_miss,
                        });
                        true
                    }
                }
            }
            LStmt::Loop { .. } | LStmt::Workspace { .. } => false,
        }
    }

    fn never_miss_leaf(&self, access: usize, rank: usize, driver: Option<VecAccess>) -> bool {
        // Within the vectorized loop, the driver's own level is bound to
        // stored positions; outer levels carry the compile-time flags.
        match driver {
            Some(d) if d.access == access && d.level + 1 == rank => {
                self.never_miss[access][d.level]
            }
            _ => self.never_miss[access][rank],
        }
    }

    /// Returns the register an operand can be read from, emitting a load
    /// step for dense / driver / probe / gather reads. `None` = not
    /// vectorizable. Sets `missable` when the emitted load can raise
    /// the per-coordinate miss flag.
    fn vec_operand(
        &mut self,
        e: &LExpr,
        idx: usize,
        shape: VecShape,
        b: &mut VecBuilder,
        missable: &mut bool,
    ) -> Option<usize> {
        match e {
            LExpr::Scalar(slot) => Some(self.alias[*slot]),
            LExpr::Lit(v) => Some(self.const_reg(*v)),
            LExpr::ReadDense { .. }
            | LExpr::ReadSparsePath { .. }
            | LExpr::ReadSparseRandom { .. } => {
                let t = self.alloc_temp();
                self.vec_load_into(e, t, idx, shape, b, true, missable).then_some(t)
            }
            _ => None,
        }
    }

    /// Emits a load step binding `e` into `dst`. `false` = bail.
    ///
    /// `in_assign` distinguishes assignment operands (whose annihilator
    /// misses must raise the per-coordinate flag) from `let` bindings
    /// (whose misses are cleared before any assignment evaluates, as in
    /// the interpreter).
    #[allow(clippy::too_many_arguments)]
    fn vec_load_into(
        &mut self,
        e: &LExpr,
        dst: usize,
        idx: usize,
        shape: VecShape,
        b: &mut VecBuilder,
        in_assign: bool,
        missable: &mut bool,
    ) -> bool {
        match e {
            LExpr::ReadDense { tensor, modes } => {
                let (base, stride) = self.split_terms(*tensor, modes, idx);
                let id = self.alloc_vec_base();
                b.open_steps.push(VStep::Load { dst, tensor: *tensor, id, base, stride });
                true
            }
            LExpr::ReadSparsePath { access, tensor, rank, annihilator } => {
                // The driver's leaf value reads positionally; the probed
                // access's leaf value reads through the intersection.
                if let Some(d) = shape.driver {
                    if d.access == *access
                        && d.level + 1 == *rank
                        && d.tensor == *tensor
                        && self.never_miss[*access][d.level]
                    {
                        b.open_steps.push(VStep::LoadVal { dst, tensor: *tensor });
                        return true;
                    }
                }
                if let Some(p) = shape.probe {
                    if p.access == *access && p.level + 1 == *rank && p.tensor == *tensor {
                        let set_miss = in_assign && *annihilator;
                        *missable |= set_miss;
                        b.open_steps.push(VStep::LoadProbe { dst, tensor: *tensor, set_miss });
                        return true;
                    }
                }
                false
            }
            LExpr::ReadSparseRandom { tensor, modes, annihilator } => {
                // A monotone cursor exists exactly when the loop index
                // appears at one subscript position: the prefix path is
                // loop-invariant (cached at entry) and the suffix
                // descends per hit. Multiple occurrences fall back to
                // the full per-coordinate search.
                let occurrences = modes.iter().filter(|&&m| m == idx).count();
                let var_mode =
                    (occurrences == 1).then(|| modes.iter().position(|&m| m == idx).unwrap());
                let set_miss = in_assign && *annihilator;
                *missable |= set_miss;
                let id = self.alloc_vec_gather();
                b.open_steps.push(VStep::LoadGather {
                    dst,
                    tensor: *tensor,
                    id,
                    modes: modes.iter().copied().collect(),
                    var_mode,
                    set_miss,
                });
                true
            }
            _ => false,
        }
    }

    fn split_terms(&self, tensor: usize, modes: &[usize], idx: usize) -> (Box<[Term]>, usize) {
        let strides = self.strides_of(tensor);
        let mut base = Vec::new();
        let mut stride = 0usize;
        for (&m, &s) in modes.iter().zip(strides) {
            if m == idx {
                stride += s;
            } else {
                base.push(Term { reg: m, stride: s });
            }
        }
        (base.into(), stride)
    }

    fn alloc_vec_base(&mut self) -> usize {
        self.n_vec_bases += 1;
        self.n_vec_bases - 1
    }

    fn alloc_vec_item(&mut self) -> usize {
        self.n_vec_items += 1;
        self.n_vec_items - 1
    }

    fn alloc_vec_gather(&mut self) -> usize {
        self.n_vec_gathers += 1;
        self.n_vec_gathers - 1
    }

    /// Compiles `e` and returns the register holding its value. Plain
    /// scalar reads return their (alias-resolved) slot and literals
    /// return their pooled constant register — no instruction emitted.
    fn expr_reg(&mut self, e: &LExpr) -> usize {
        match e {
            LExpr::Scalar(slot) => self.alias[*slot],
            LExpr::Lit(v) => self.const_reg(*v),
            _ => {
                let t = self.alloc_temp();
                self.expr(e, t);
                t
            }
        }
    }

    /// Compiles `e`'s value into `f[dst]`.
    fn expr(&mut self, e: &LExpr, dst: usize) {
        match e {
            LExpr::Lit(v) => self.emit(Instr::Const { dst, val: *v }),
            LExpr::Scalar(slot) => {
                let src = self.alias[*slot];
                self.emit(Instr::Copy { dst, src });
            }
            LExpr::ReadDense { tensor, modes } => {
                let terms = self.terms(*tensor, modes);
                self.emit(Instr::ReadDense { dst, tensor: *tensor, terms });
            }
            LExpr::ReadOutput { tensor, modes } => {
                let terms = self.terms(*tensor, modes);
                self.emit(Instr::ReadOutput { dst, tensor: *tensor, terms });
            }
            LExpr::ReadSparsePath { access, tensor, rank, annihilator } => {
                let leaf = self.pos_base[*access] + rank;
                if self.never_miss[*access][*rank] {
                    self.emit(Instr::ReadSparseDirect { dst, tensor: *tensor, leaf });
                } else {
                    self.emit(Instr::ReadSparsePath {
                        dst,
                        tensor: *tensor,
                        leaf,
                        annihilator: *annihilator,
                    });
                }
            }
            LExpr::ReadSparseRandom { tensor, modes, annihilator } => {
                self.emit(Instr::ReadSparseRandom {
                    dst,
                    tensor: *tensor,
                    modes: modes.iter().copied().collect(),
                    annihilator: *annihilator,
                });
            }
            LExpr::Call { op, args } => match args.as_slice() {
                [single] => self.expr(single, dst),
                [first, rest @ ..] => {
                    // Left fold; the first Bin reads both operands from
                    // registers, so scalar/constant operands cost nothing.
                    let mark = self.temp_next;
                    let a = self.expr_reg(first);
                    let (second, tail) = rest.split_first().expect("binary or wider handled here");
                    let b = self.expr_reg(second);
                    self.emit(Instr::Bin { op: *op, dst, a, b });
                    self.temp_next = mark;
                    for arg in tail {
                        let mark = self.temp_next;
                        let t = self.expr_reg(arg);
                        self.emit(Instr::Bin { op: *op, dst, a: dst, b: t });
                        self.temp_next = mark;
                    }
                }
                [] => unreachable!("calls have at least one argument"),
            },
            LExpr::CmpVal { op, a, b } => {
                self.emit(Instr::CmpVal { dst, op: *op, a: *a, b: *b });
            }
            LExpr::Lookup { table, index } => {
                self.expr(index, dst);
                self.tables.push(table.clone().into_boxed_slice());
                self.emit(Instr::LookupTable { dst, table: self.tables.len() - 1, src: dst });
            }
        }
    }

    /// Emits a branch to `target` when `cond` is false (fall through when
    /// true).
    fn cond_false_jump(&mut self, cond: &LCond, target: Label) {
        match cond {
            LCond::True => {}
            LCond::Cmp(op, a, b) => {
                self.emit(Instr::JumpIfNotCmp { op: *op, a: *a, b: *b, to: target.0 });
            }
            LCond::And(cs) => {
                for c in cs {
                    self.cond_false_jump(c, target);
                }
            }
            LCond::Or(cs) => {
                let ok = self.new_label();
                if let Some((last, init)) = cs.split_last() {
                    for c in init {
                        self.cond_true_jump(c, ok);
                    }
                    self.cond_false_jump(last, target);
                } else {
                    // An empty disjunction is false, as in the interpreter.
                    self.emit(Instr::Jump { to: target.0 });
                }
                self.bind(ok);
            }
        }
    }

    /// Emits a branch to `target` when `cond` is true (fall through when
    /// false).
    fn cond_true_jump(&mut self, cond: &LCond, target: Label) {
        match cond {
            LCond::True => self.emit(Instr::Jump { to: target.0 }),
            LCond::Cmp(op, a, b) => {
                self.emit(Instr::JumpIfCmp { op: *op, a: *a, b: *b, to: target.0 });
            }
            LCond::And(cs) => {
                let fail = self.new_label();
                if let Some((last, init)) = cs.split_last() {
                    for c in init {
                        self.cond_false_jump(c, fail);
                    }
                    self.cond_true_jump(last, target);
                } else {
                    self.emit(Instr::Jump { to: target.0 });
                }
                self.bind(fail);
            }
            LCond::Or(cs) => {
                for c in cs {
                    self.cond_true_jump(c, target);
                }
            }
        }
    }

    /// Rewrites label ids in jump fields to absolute program counters.
    fn resolve_labels(&mut self) {
        let resolve = |labels: &[Option<usize>], id: usize| -> usize {
            labels[id].expect("jump to unbound label")
        };
        // Split borrows: read labels, rewrite instructions.
        let labels = std::mem::take(&mut self.labels);
        for instr in &mut self.instrs {
            match instr {
                Instr::Jump { to }
                | Instr::JumpIfCmp { to, .. }
                | Instr::JumpIfNotCmp { to, .. }
                | Instr::JumpIfMiss { to }
                | Instr::JumpIfUMiss { to, .. } => *to = resolve(&labels, *to),
                Instr::DenseLoopHead { exit, .. }
                | Instr::SparseLoopHead { exit, .. }
                | Instr::RleLoopHead { exit, .. } => *exit = resolve(&labels, *exit),
                Instr::DenseLoopNext { back, .. }
                | Instr::SparseLoopNext { back, .. }
                | Instr::RleLoopNext { back, .. } => *back = resolve(&labels, *back),
                _ => {}
            }
        }
    }
}
