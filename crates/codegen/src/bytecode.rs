//! The flat, register-based instruction set the VM executes.
//!
//! Three register files, all resolved to flat indices at compile time:
//!
//! * `u` — `usize` registers: loop-index values, loop counters (cursor /
//!   end / run / coordinate), and sparse-path positions. Position
//!   registers use [`MISS`] as the "unstored" sentinel.
//! * `f` — `f64` registers: lowered scalars (`let` / workspace slots)
//!   followed by expression temporaries.
//! * one `missing` flag, set by annihilator reads that miss and consumed
//!   by [`Instr::JumpIfMiss`].
//!
//! Control flow is explicit: every loop is a `*LoopHead` (evaluate
//! bounds, position the iterator, enter the first iteration or jump to
//! the exit) followed by the body and a `*LoopNext` (advance; jump back
//! or fall through). Loop heads are monomorphized per driver
//! [`systec_tensor::LevelFormat`] — a dense counted loop, a compressed
//! `pos`/`crd` walk, or a run-length walk — so the hot path never
//! dispatches on storage format.

use systec_exec::lowered::SlotKind;
use systec_ir::{AssignOp, BinOp, CmpOp};

/// Sentinel for "position unstored" in `u` position registers.
pub(crate) const MISS: usize = usize::MAX;

/// One `offset += u[reg] * stride` term of a strided address.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Term {
    /// Index register.
    pub reg: usize,
    /// Row-major stride (baked in at compile time; the plan key pins the
    /// operand shapes).
    pub stride: usize,
}

/// One dynamic loop bound: `u[reg] + delta`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Bound {
    pub reg: usize,
    pub delta: i64,
}

/// A bytecode instruction. `to` / `exit` / `back` fields are absolute
/// program counters after label resolution.
#[derive(Clone, Debug)]
pub(crate) enum Instr {
    /// Unconditional jump.
    Jump { to: usize },
    /// Dense loop entry: clamp bounds, start at the lower bound.
    DenseLoopHead {
        idx: usize,
        cur: usize,
        end: usize,
        extent: usize,
        lo: Box<[Bound]>,
        hi: Box<[Bound]>,
        exit: usize,
    },
    /// Dense loop advance.
    DenseLoopNext { idx: usize, cur: usize, end: usize, back: usize },
    /// Compressed-driver loop entry: binary-search the bound window in
    /// the level's `crd` slice, then walk stored coordinates. The head
    /// publishes the fiber's `crd` slice under `cache` so the advance
    /// never re-resolves the tensor binding.
    SparseLoopHead {
        tensor: usize,
        level: usize,
        cache: usize,
        idx: usize,
        parent: usize,
        child: usize,
        cur: usize,
        end: usize,
        lo: Box<[Bound]>,
        hi: Box<[Bound]>,
        exit: usize,
    },
    /// Compressed-driver loop advance.
    SparseLoopNext { cache: usize, idx: usize, child: usize, cur: usize, end: usize, back: usize },
    /// Run-length-driver loop entry (publishes `run_start`/`run_end`
    /// slices under `cache`).
    RleLoopHead {
        tensor: usize,
        level: usize,
        cache: usize,
        idx: usize,
        parent: usize,
        child: usize,
        run: usize,
        run_end: usize,
        coord: usize,
        hi_reg: usize,
        lo: Box<[Bound]>,
        hi: Box<[Bound]>,
        exit: usize,
    },
    /// Run-length-driver loop advance.
    RleLoopNext {
        cache: usize,
        idx: usize,
        child: usize,
        run: usize,
        run_end: usize,
        coord: usize,
        hi_reg: usize,
        back: usize,
    },
    /// Advance a non-driving tracked access one level at the current
    /// coordinate (`u[child] = find(u[parent], u[idx])` or [`MISS`]).
    Probe { tensor: usize, level: usize, parent: usize, child: usize, idx: usize },
    /// Jump when the comparison over `u` registers holds.
    JumpIfCmp { op: CmpOp, a: usize, b: usize, to: usize },
    /// Jump when the comparison over `u` registers fails.
    JumpIfNotCmp { op: CmpOp, a: usize, b: usize, to: usize },
    /// `f[dst] = val`.
    Const { dst: usize, val: f64 },
    /// `f[dst] = f[src]`.
    Copy { dst: usize, src: usize },
    /// `f[dst] = op(f[a], f[b])` (one flop).
    Bin { op: BinOp, dst: usize, a: usize, b: usize },
    /// Strided dense-input element read (one counted read).
    ReadDense { dst: usize, tensor: usize, terms: Box<[Term]> },
    /// Strided output element read (one counted read).
    ReadOutput { dst: usize, tensor: usize, terms: Box<[Term]> },
    /// Tracked-path sparse read: `f[dst] = vals[u[leaf]]`, or fill (0)
    /// when the leaf position is [`MISS`].
    ReadSparsePath { dst: usize, tensor: usize, leaf: usize, annihilator: bool },
    /// Tracked-path sparse read proven never to miss (every level of
    /// the path is bound by a driver loop or a dense-level probe): no
    /// sentinel check.
    ReadSparseDirect { dst: usize, tensor: usize, leaf: usize },
    /// Non-concordant sparse read: per-level search from the root.
    ReadSparseRandom { dst: usize, tensor: usize, modes: Box<[usize]>, annihilator: bool },
    /// `f[dst] = op(u[a], u[b]) as 0/1`.
    CmpVal { dst: usize, op: CmpOp, a: usize, b: usize },
    /// `f[dst] = tables[table][f[src] as usize]` (0 out of range).
    LookupTable { dst: usize, table: usize, src: usize },
    /// Clear the miss flag before a fallible right-hand side.
    ClearMiss,
    /// Jump when the miss flag is set (annihilated assignment).
    JumpIfMiss { to: usize },
    /// Jump when `u[reg]` is [`MISS`] (`let` over an absent driver value).
    JumpIfUMiss { reg: usize, to: usize },
    /// Reducing (or overwriting) store to an output element.
    WriteOutput { tensor: usize, terms: Box<[Term]>, op: AssignOp, src: usize },
    /// Reducing (or overwriting) store to a scalar slot.
    WriteScalar { slot: usize, op: AssignOp, src: usize },
    /// Fused compute-and-store: `out[terms] op= bin(f[a], f[b])` — the
    /// dominant `w += t * x[j]` shape as one instruction. The binary op
    /// always executes (and counts its flop, as in the interpreter);
    /// with `check_miss` the *store* is skipped when the miss flag is
    /// set.
    FusedWriteOutput {
        tensor: usize,
        terms: Box<[Term]>,
        bin: BinOp,
        op: AssignOp,
        a: usize,
        b: usize,
        check_miss: bool,
    },
    /// Fused compute-and-store to a scalar slot.
    FusedWriteScalar { slot: usize, bin: BinOp, op: AssignOp, a: usize, b: usize, check_miss: bool },
    /// N-ary fold-and-store: `out[terms] op= fold(bin, f[srcs])` — a
    /// whole `C[i,j] += 2 * t * B[k,j] * B[l,j]` right-hand side in one
    /// dispatch. Counts `srcs.len() - 1` fold flops plus the reduction,
    /// exactly like the interpreter's n-ary evaluation.
    FoldWriteOutput {
        tensor: usize,
        terms: Box<[Term]>,
        bin: BinOp,
        op: AssignOp,
        srcs: Box<[usize]>,
        check_miss: bool,
    },
    /// N-ary fold-and-store to a scalar slot.
    FoldWriteScalar { slot: usize, bin: BinOp, op: AssignOp, srcs: Box<[usize]>, check_miss: bool },
    /// Workspace initialization: `f[slot] = val` (uncounted).
    InitScalar { slot: usize, val: f64 },
    /// A whole innermost dense loop as one instruction: guards are
    /// loop-invariant (evaluated once at entry), strided bases are
    /// precomputed, and the body is a flat step list. Counter semantics
    /// are identical to executing the equivalent instruction sequence.
    VecDenseLoop {
        idx: usize,
        extent: usize,
        lo: Box<[Bound]>,
        hi: Box<[Bound]>,
        items: Box<[VItem]>,
    },
    /// A whole innermost compressed-driver loop as one instruction.
    VecSparseLoop {
        tensor: usize,
        level: usize,
        idx: usize,
        parent: usize,
        lo: Box<[Bound]>,
        hi: Box<[Bound]>,
        items: Box<[VItem]>,
    },
    /// A whole innermost run-length-driver loop as one instruction: runs
    /// expand into strided body applications, one per covered
    /// coordinate, with the run's value position held constant across
    /// the run. Counter semantics are identical to the equivalent
    /// `RleLoopHead`/`RleLoopNext` walk.
    VecRleLoop {
        tensor: usize,
        level: usize,
        idx: usize,
        parent: usize,
        lo: Box<[Bound]>,
        hi: Box<[Bound]>,
        items: Box<[VItem]>,
    },
    /// A whole innermost two-way sparse–sparse intersection loop as one
    /// instruction: iteration walks the driver's compressed coordinates
    /// (exactly as [`Instr::VecSparseLoop`]) while a galloping merge
    /// cursor tracks the probed fiber, replacing the per-step
    /// `Probe` binary search of the general path. The body observes the
    /// probe through [`VStep::LoadProbe`] (value on a hit, fill + miss
    /// flag on a miss), so per-step counters — iterations and driver
    /// reads per driver coordinate, probe reads and guarded stores per
    /// hit — match the interpreter exactly.
    VecIsectLoop {
        tensor: usize,
        level: usize,
        idx: usize,
        parent: usize,
        probe_tensor: usize,
        probe_level: usize,
        probe_parent: usize,
        lo: Box<[Bound]>,
        hi: Box<[Bound]>,
        items: Box<[VItem]>,
    },
    /// End of program.
    Halt,
}

/// One (possibly guarded) group of straight-line work inside a vector
/// loop. The guard is a conjunction over loop-invariant `u` registers.
#[derive(Clone, Debug)]
pub(crate) struct VItem {
    /// Scratch index for the precomputed pass/fail of the guard.
    pub id: usize,
    /// Conjunction of comparisons over loop-invariant registers.
    pub guard: Box<[(CmpOp, usize, usize)]>,
    /// The body, executed in order for each coordinate.
    pub steps: Box<[VStep]>,
    /// Compile-time specialization of `steps` (see `crate::fuse`): when
    /// exactly one item of the loop passes its guard and carries a
    /// fused body, the VM runs the monomorphized fused loop instead of
    /// dispatching the step list per coordinate. `None` = the body did
    /// not match any fused pattern (the step list always remains the
    /// semantic reference, and runs whenever several guarded items pass
    /// at once).
    pub fused: Option<Fused>,
}

/// Classification of a fused loop body — the pattern the selector
/// recognized. Purely descriptive (disassembly, golden snapshots, and
/// runner dispatch); the executable form is the [`Fused`] load/fold
/// lists.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FusedBody {
    /// `acc op= fold(bin, …)` into a register-held accumulator (a
    /// scalar slot or a loop-invariant output cell): SpMV row dots,
    /// SSYRK's intersection dot.
    Dot,
    /// `out[base + coord·stride] op= fold(bin, …)` — a strided
    /// reducing store per coordinate (`y[j] += a·x_i`).
    Axpy,
    /// The [`FusedBody::Axpy`] shape with an overwriting store
    /// (`out[j] = c·x[j]`).
    ScaleStore,
    /// SSYMV's symmetric pair: a scalar dot and a strided axpy sharing
    /// the driver value in one body.
    DotAxpy,
    /// A dot whose second operand gathers through
    /// [`VStep::LoadGather`].
    GatherDot,
    /// An axpy whose operand gathers.
    GatherAxpy,
    /// Any other conforming load/fold body (MTTKRP's three-way factor
    /// updates, TTM's slice axpys): still monomorphized — loads resolve
    /// to slices once per loop, folds skip the step machinery — but
    /// with more than one store per coordinate.
    Jam,
}

/// One per-coordinate load of a fused body. Loads evaluate **once** per
/// coordinate, in order, into local value slots (their position in the
/// load list) — never through the `f` register file.
#[derive(Clone, Debug)]
pub(crate) enum FLoad {
    /// The driver's value at the current position (counted per
    /// iteration, in bulk, against the driving tensor).
    Val,
    /// The probed fiber's value: fill (0) + miss on an intersection
    /// miss, counted per hit.
    Probe { tensor: usize, set_miss: bool },
    /// Strided dense element `dense[tensor][offset(u, base) + coord·stride]`
    /// (counted per iteration, in bulk).
    Dense { tensor: usize, base: Box<[Term]>, stride: usize },
    /// Random-access gather — same contract (and cursor scratch slot)
    /// as [`VStep::LoadGather`]; counted per hit.
    Gather {
        tensor: usize,
        id: usize,
        modes: Box<[usize]>,
        var_mode: Option<usize>,
        set_miss: bool,
    },
}

/// One operand of a fused fold.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FOp {
    /// A per-coordinate load, by position in the body's load list.
    Local(usize),
    /// A loop-invariant `f` register, snapshot once at loop entry (the
    /// selector proves no step of the body writes it).
    Reg(usize),
}

/// Where a fused fold accumulates.
#[derive(Clone, Debug)]
pub(crate) enum FAcc {
    /// `f[slot]` — held in a machine register across the whole loop
    /// (the selector proves no operand reads it).
    Scalar { slot: usize },
    /// `out[offset(u, base) + coord·stride]`.
    Out { tensor: usize, base: Box<[Term]>, stride: usize },
}

/// One fold of a fused body: `acc op= fold(bin, srcs)`, with the same
/// evaluate-fully-then-miss-check store semantics as
/// [`VStep::FoldOut`] / [`VStep::FoldScalar`].
#[derive(Clone, Debug)]
pub(crate) struct FFold {
    pub acc: FAcc,
    pub bin: BinOp,
    pub op: AssignOp,
    pub srcs: Box<[FOp]>,
    pub check_miss: bool,
    /// Load locals whose miss state gates this fold's store — exactly
    /// the `set_miss` loads between the previous fold and this one in
    /// the original step order, so the positional miss-flag scoping of
    /// the step list is preserved.
    pub miss: Box<[usize]>,
}

/// Per-iteration loop-invariant counter contributions of a fused body,
/// derived from the step list it replaces: the fused runners account
/// these in bulk (`recipe × iterations`) and count only hit-dependent
/// work (probe/gather reads, miss-checked store sides) per element.
#[derive(Clone, Debug, Default)]
pub(crate) struct BulkCounts {
    /// Element reads per iteration, per tensor slot.
    pub reads: Box<[(usize, u64)]>,
    /// Fold flops (plus unguarded reduce flops) per iteration.
    pub flops: u64,
    /// Unguarded output stores per iteration.
    pub writes: u64,
}

/// A fused loop body: the closed-form, monomorphized alternative to a
/// [`VItem`] step list (see `crate::fuse` for the selection rules).
#[derive(Clone, Debug)]
pub(crate) struct Fused {
    /// The recognized pattern.
    pub kind: FusedBody,
    /// Per-coordinate loads, evaluated in order into local slots.
    pub loads: Box<[FLoad]>,
    /// Straight-line folds, executed in order per coordinate.
    pub folds: Box<[FFold]>,
    /// Bulk counter recipe (invariant contributions per iteration).
    pub bulk: BulkCounts,
    /// Pre-analyzed `(slot, bin, op, probe tensor)` of the plain
    /// intersection dot (`f[slot] op= bin(driver, probe)`, SSYRK's
    /// shape) — lets the VM skip every entry-time shape check on a loop
    /// it may enter tens of thousands of times per run.
    pub isect_dot: Option<(usize, BinOp, AssignOp, usize)>,
    /// Virtual lane count the runners use under
    /// [`crate::LaneMode::Lanes`]: [`crate::vm::LANES`] when every
    /// register-held fold of the body reduces through an operator with
    /// an identity (so lanes can be seeded and merged in fixed order
    /// without changing which elements participate), `1` when any fold
    /// pins the body to strict scalar order. Purely descriptive in the
    /// bytecode (disassembly/goldens); the runners re-derive legality
    /// from it at dispatch.
    pub lanes: u8,
}

/// One step of a vector-loop body. `base`-bearing steps carry a scratch
/// index (`id`) where the loop entry caches `offset(u, base)`; the
/// per-coordinate address is `bases[id] + coord * stride`.
///
/// The step list is the *general* body form, dispatched per coordinate.
/// Bodies matching a common pattern (axpy, dot, scale-store,
/// gather-dot/-axpy, and their combinations — see [`FusedBody`]) are
/// additionally lowered to a [`Fused`] form on their [`VItem`] and
/// executed by dedicated monomorphized loops instead.
///
/// ## Per-coordinate miss flag
///
/// Steps that can miss ([`VStep::LoadProbe`], [`VStep::LoadGather`])
/// raise a transient miss flag when `set_miss` is set; fold steps with
/// `check_miss` skip their store while the flag is up, and every fold
/// step lowers the flag — mirroring the interpreter's per-assignment
/// `ClearMiss` scoping (an assignment's operand loads directly precede
/// its fold in the step list).
#[derive(Clone, Debug)]
pub(crate) enum VStep {
    /// `f[dst] = dense[tensor][bases[id] + coord * stride]` (counted).
    Load { dst: usize, tensor: usize, id: usize, base: Box<[Term]>, stride: usize },
    /// `f[dst] = vals[position]` of the driving level (counted).
    LoadVal { dst: usize, tensor: usize },
    /// Probed read in a [`Instr::VecIsectLoop`]: the probed fiber's
    /// value at the current coordinate when the intersection hit
    /// (counted), fill (0) otherwise (raising the miss flag when
    /// `set_miss`).
    LoadProbe { dst: usize, tensor: usize, set_miss: bool },
    /// Non-concordant (`ReadSparseRandom`) read inside a vector loop:
    /// a per-level search from the tensor's root at the current index
    /// values. When the loop index appears in exactly one subscript
    /// position (`var_mode = Some(k)`, the position of that mode in
    /// `modes`), the invariant prefix path `modes[..k]` resolves once
    /// at loop entry, position `k` advances a monotone cursor in the
    /// scratch slot `id` (a gallop for compressed levels, a run cursor
    /// for run-length levels, direct addressing for dense levels), and
    /// the loop-invariant suffix `modes[k+1..]` descends per hit.
    /// `var_mode = None` (the index appears in several positions)
    /// searches the full path per coordinate. Counted on a hit; fill +
    /// miss flag (when `set_miss`) otherwise.
    LoadGather {
        dst: usize,
        tensor: usize,
        id: usize,
        modes: Box<[usize]>,
        var_mode: Option<usize>,
        set_miss: bool,
    },
    /// `out[bases[id] + coord*stride] op= fold(bin, f[srcs])`; with
    /// `check_miss` the store (and its reduce flop / write count) is
    /// skipped while the miss flag is up — the fold itself always
    /// evaluates and counts, as in the interpreter.
    FoldOut {
        tensor: usize,
        id: usize,
        base: Box<[Term]>,
        stride: usize,
        bin: BinOp,
        op: AssignOp,
        srcs: Box<[usize]>,
        check_miss: bool,
    },
    /// `f[slot] op= fold(bin, f[srcs])` (same `check_miss` contract).
    FoldScalar { slot: usize, bin: BinOp, op: AssignOp, srcs: Box<[usize]>, check_miss: bool },
}

/// Per-tensor-slot binding metadata, validated when the program binds
/// concrete tensors.
#[derive(Clone, Debug)]
pub(crate) struct TensorInfo {
    /// Display name (binding key in the input/output maps).
    pub name: String,
    /// Binding class.
    pub kind: SlotKind,
    /// Shape the plan was compiled against.
    pub dims: Vec<usize>,
}

/// How one output tensor is bound under row-parallel execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ParOut {
    /// Every access's leading subscript is the enclosing split loop's
    /// index: chunks touch disjoint row ranges, so workers write
    /// disjoint sub-slices of the shared buffer in place.
    Owned,
    /// Written through a single mergeable reduction operator (and never
    /// read): each worker reduces into a private buffer initialized to
    /// the operator's identity, merged into the shared buffer in fixed
    /// worker order after the join.
    Reduced(AssignOp),
}

/// The compiler's proof that a program may execute row-parallel: which
/// top-level loop heads can be clamped to a coordinate chunk, and how
/// each output must be bound so chunks never conflict.
#[derive(Clone, Debug)]
pub(crate) struct SplitInfo {
    /// Top-level loop heads as `(pc, index extent)`, in program order.
    /// Workers run the whole program with each of these heads clamped to
    /// the worker's coordinate chunk `[k*extent/chunks, (k+1)*extent/chunks)`.
    pub heads: Vec<(usize, usize)>,
    /// When [`ParOut::Owned`] outputs exist, the common extent all split
    /// loops share — chunk boundaries in this domain double as the row
    /// boundaries the owned buffers are split at.
    pub owned_extent: Option<usize>,
    /// Parallel binding mode per output slot (`(slot, mode)` pairs for
    /// every output the split loops touch).
    pub outputs: Vec<(usize, ParOut)>,
}

/// A compiled program: flat instructions plus register-file sizes and
/// binding metadata.
#[derive(Clone, Debug)]
pub(crate) struct BytecodeProgram {
    pub instrs: Vec<Instr>,
    /// Initial contents of the `u` file (index slots 0, root positions 0,
    /// deeper positions [`MISS`]).
    pub u_init: Vec<usize>,
    /// Size of the `f` file (scalars + temporaries).
    pub n_f: usize,
    /// Lookup tables referenced by [`Instr::LookupTable`].
    pub tables: Vec<Box<[f64]>>,
    /// Number of per-loop fiber caches (one per driven loop).
    pub n_caches: usize,
    /// Scratch sizes for vector loops (guard passes / cached bases).
    pub n_vec_items: usize,
    /// See [`BytecodeProgram::n_vec_items`].
    pub n_vec_bases: usize,
    /// Number of gather-cursor scratch slots ([`VStep::LoadGather`]).
    pub n_vec_gathers: usize,
    /// Per-slot binding metadata, in slot order.
    pub tensors: Vec<TensorInfo>,
    /// Start of each slot's run of entries in the flattened level-view
    /// binding table (meaningful for sparse slots only).
    pub level_base: Vec<usize>,
    /// Total level-view entries across all sparse slots.
    pub n_levels: usize,
    /// Output ordinal per slot (`usize::MAX` for inputs): outputs bind
    /// into a dense table of `n_outputs` mutable slices.
    pub out_ordinal: Vec<usize>,
    /// Number of output slots.
    pub n_outputs: usize,
    /// Present when the program proved row-parallelizable.
    pub split: Option<SplitInfo>,
}
