//! The LRU plan cache.
//!
//! The paper's methodology (and the ROADMAP's heavy-traffic scenario) is
//! prepare-once / run-many: the expensive work — symmetrization, the
//! §4.2 passes, hoisting, lowering, and bytecode compilation — depends
//! only on the *kernel specification* (einsum + symmetry declarations)
//! and the *operand signature* (storage formats + shapes), never on the
//! tensor values. [`PlanCache`] memoizes that work under a [`PlanKey`]
//! so a repeated kernel spec skips straight to execution.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use systec_tensor::{LevelFormat, Tensor};

/// The storage signature of one operand: family, per-mode formats, and
/// shape.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BindingSig {
    /// Dense strided storage of the given shape.
    Dense {
        /// The operand's shape.
        dims: Vec<usize>,
    },
    /// Compressed storage with the given per-mode level formats.
    Compressed {
        /// Per-mode level formats.
        formats: Vec<LevelFormat>,
        /// The operand's shape.
        dims: Vec<usize>,
    },
}

impl BindingSig {
    /// The signature of a concrete tensor.
    pub fn of(tensor: &Tensor) -> BindingSig {
        match tensor {
            Tensor::Dense(t) => BindingSig::Dense { dims: t.dims().to_vec() },
            Tensor::Sparse(t) => {
                BindingSig::Compressed { formats: t.formats().to_vec(), dims: t.dims().to_vec() }
            }
        }
    }
}

/// A plan identity: everything compilation depends on.
///
/// Two invocations with equal keys produce byte-identical plans, so the
/// cached plan can be shared freely (plans are immutable).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PlanKey {
    /// The kernel specification: canonical einsum text plus any variant
    /// tag the caller distinguishes (e.g. `systec` vs `naive`).
    pub spec: String,
    /// Canonical rendering of the symmetry declarations.
    pub symmetry: String,
    /// Operand signatures, sorted by operand name.
    pub bindings: Vec<(String, BindingSig)>,
}

impl PlanKey {
    /// Builds a key from a spec string, a symmetry string, and concrete
    /// input bindings (formats and dims are extracted; values ignored).
    pub fn new(
        spec: impl Into<String>,
        symmetry: impl Into<String>,
        inputs: &HashMap<String, Tensor>,
    ) -> PlanKey {
        let mut bindings: Vec<(String, BindingSig)> =
            inputs.iter().map(|(name, t)| (name.clone(), BindingSig::of(t))).collect();
        bindings.sort_by(|a, b| a.0.cmp(&b.0));
        PlanKey { spec: spec.into(), symmetry: symmetry.into(), bindings }
    }
}

/// Cache observability counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Plans evicted by the LRU policy.
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// An LRU cache from [`PlanKey`] to shared immutable plans.
///
/// Values are handed out as [`Arc`]s: evicting a plan never invalidates
/// kernels still holding it. Eviction scans for the least-recently-used
/// entry — O(capacity), which is fine at plan-cache sizes (tens of
/// entries, hit on every repeated invocation).
#[derive(Debug)]
pub struct PlanCache<V> {
    capacity: usize,
    map: HashMap<PlanKey, (Arc<V>, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> PlanCache<V> {
    /// A cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be positive");
        PlanCache { capacity, map: HashMap::new(), tick: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Looks up `key`, recording a hit (and refreshing recency) or a
    /// miss. Callers that miss should build the plan *without* holding
    /// any lock around the cache, then [`PlanCache::insert`] it.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<V>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((plan, used)) => {
                *used = self.tick;
                self.hits += 1;
                Some(Arc::clone(plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly built plan, evicting the least-recently-used
    /// entry when full. Counts nothing (the miss was recorded by
    /// [`PlanCache::get`]); if a concurrent builder won the race the
    /// newer plan simply replaces it — equal keys produce equal plans.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<V>) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (_, used))| *used).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (plan, self.tick));
    }

    /// Current observability counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
        }
    }

    /// Drops every cached plan and resets the statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(spec: &str) -> PlanKey {
        PlanKey { spec: spec.into(), symmetry: String::new(), bindings: Vec::new() }
    }

    /// The miss-then-insert protocol the production caller follows.
    fn get_or_build(
        cache: &mut PlanCache<u32>,
        k: PlanKey,
        build: impl FnOnce() -> u32,
    ) -> Arc<u32> {
        match cache.get(&k) {
            Some(plan) => plan,
            None => {
                let plan = Arc::new(build());
                cache.insert(k, Arc::clone(&plan));
                plan
            }
        }
    }

    #[test]
    fn hit_returns_same_plan() {
        let mut cache: PlanCache<u32> = PlanCache::new(4);
        let a = get_or_build(&mut cache, key("a"), || 1);
        let b = get_or_build(&mut cache, key("a"), || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache: PlanCache<u32> = PlanCache::new(2);
        get_or_build(&mut cache, key("a"), || 1);
        get_or_build(&mut cache, key("b"), || 2);
        // Touch a, then insert c: b is the LRU victim.
        get_or_build(&mut cache, key("a"), || panic!());
        get_or_build(&mut cache, key("c"), || 3);
        assert_eq!(cache.stats().evictions, 1);
        // a still cached, b rebuilt.
        get_or_build(&mut cache, key("a"), || panic!());
        let mut rebuilt = false;
        get_or_build(&mut cache, key("b"), || {
            rebuilt = true;
            2
        });
        assert!(rebuilt);
    }

    #[test]
    fn failed_builds_cache_nothing() {
        let mut cache: PlanCache<u32> = PlanCache::new(2);
        // A miss whose build fails simply never inserts.
        assert!(cache.get(&key("a")).is_none());
        assert_eq!(cache.stats().entries, 0);
        let ok = get_or_build(&mut cache, key("a"), || 7);
        assert_eq!(*ok, 7);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn key_is_value_insensitive() {
        use systec_tensor::{CooTensor, SparseTensor, Tensor, CSR};
        let mut coo1 = CooTensor::new(vec![3, 3]);
        coo1.push(&[0, 1], 1.0);
        let mut coo2 = CooTensor::new(vec![3, 3]);
        coo2.push(&[2, 2], 9.0);
        let mk = |coo: &CooTensor| {
            let mut m = HashMap::new();
            m.insert("A".to_string(), Tensor::Sparse(SparseTensor::from_coo(coo, &CSR).unwrap()));
            m
        };
        let k1 = PlanKey::new("spec", "sym", &mk(&coo1));
        let k2 = PlanKey::new("spec", "sym", &mk(&coo2));
        assert_eq!(k1, k2, "same formats+dims must key identically");
        let mut coo3 = CooTensor::new(vec![4, 4]);
        coo3.push(&[0, 1], 1.0);
        let k3 = PlanKey::new("spec", "sym", &mk(&coo3));
        assert_ne!(k1, k3, "different dims must key differently");
    }
}
