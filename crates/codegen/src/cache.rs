//! The LRU plan cache.
//!
//! The paper's methodology (and the ROADMAP's heavy-traffic scenario) is
//! prepare-once / run-many: the expensive work — symmetrization, the
//! §4.2 passes, hoisting, lowering, and bytecode compilation — depends
//! only on the *kernel specification* (einsum + symmetry declarations)
//! and the *operand signature* (storage formats + shapes), never on the
//! tensor values. [`PlanCache`] memoizes that work under a [`PlanKey`]
//! so a repeated kernel spec skips straight to execution.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use systec_telemetry as telemetry;
use systec_tensor::{LevelFormat, Tensor};

/// Recovers a lock even when a panic elsewhere poisoned it: the guarded
/// state is simple bookkeeping that stays consistent across panics (the
/// user-supplied build closure never runs under a lock), so poisoning
/// must not disable the cache for the rest of the process.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The storage signature of one operand: family, per-mode formats, and
/// shape.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BindingSig {
    /// Dense strided storage of the given shape.
    Dense {
        /// The operand's shape.
        dims: Vec<usize>,
    },
    /// Compressed storage with the given per-mode level formats.
    Compressed {
        /// Per-mode level formats.
        formats: Vec<LevelFormat>,
        /// The operand's shape.
        dims: Vec<usize>,
    },
}

impl BindingSig {
    /// The signature of a concrete tensor.
    pub fn of(tensor: &Tensor) -> BindingSig {
        match tensor {
            Tensor::Dense(t) => BindingSig::Dense { dims: t.dims().to_vec() },
            Tensor::Sparse(t) => {
                BindingSig::Compressed { formats: t.formats().to_vec(), dims: t.dims().to_vec() }
            }
        }
    }
}

/// A plan identity: everything compilation depends on.
///
/// Two invocations with equal keys produce byte-identical plans, so the
/// cached plan can be shared freely (plans are immutable).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PlanKey {
    /// The kernel specification: canonical einsum text plus any variant
    /// tag the caller distinguishes (e.g. `systec` vs `naive`).
    pub spec: String,
    /// Canonical rendering of the symmetry declarations.
    pub symmetry: String,
    /// Operand signatures, sorted by operand name.
    pub bindings: Vec<(String, BindingSig)>,
}

impl PlanKey {
    /// Builds a key from a spec string, a symmetry string, and concrete
    /// input bindings (formats and dims are extracted; values ignored).
    pub fn new(
        spec: impl Into<String>,
        symmetry: impl Into<String>,
        inputs: &HashMap<String, Tensor>,
    ) -> PlanKey {
        let mut bindings: Vec<(String, BindingSig)> =
            inputs.iter().map(|(name, t)| (name.clone(), BindingSig::of(t))).collect();
        bindings.sort_by(|a, b| a.0.cmp(&b.0));
        PlanKey { spec: spec.into(), symmetry: symmetry.into(), bindings }
    }
}

/// Cache observability counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan (waiting on a concurrent
    /// builder counts as a miss).
    pub misses: u64,
    /// Plans evicted by the LRU policy.
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
    /// Build closures actually executed ([`SharedPlanCache`] only):
    /// concurrent requests for one key perform exactly one build.
    pub builds: u64,
    /// Lookups that blocked on another thread's in-flight build of the
    /// same key ([`SharedPlanCache`] only): the single-flight protocol
    /// turned a would-be duplicate build into a wait.
    pub waits: u64,
}

/// An LRU cache from [`PlanKey`] to shared immutable plans.
///
/// Values are handed out as [`Arc`]s: evicting a plan never invalidates
/// kernels still holding it. Eviction scans for the least-recently-used
/// entry — O(capacity), which is fine at plan-cache sizes (tens of
/// entries, hit on every repeated invocation).
#[derive(Debug)]
pub struct PlanCache<V> {
    capacity: usize,
    map: HashMap<PlanKey, (Arc<V>, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> PlanCache<V> {
    /// A cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be positive");
        PlanCache { capacity, map: HashMap::new(), tick: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Looks up `key`, recording a hit (and refreshing recency) or a
    /// miss. Callers that miss should build the plan *without* holding
    /// any lock around the cache, then [`PlanCache::insert`] it.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<V>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((plan, used)) => {
                *used = self.tick;
                self.hits += 1;
                telemetry::global().plan_cache_hits.inc();
                Some(Arc::clone(plan))
            }
            None => {
                self.misses += 1;
                telemetry::global().plan_cache_misses.inc();
                None
            }
        }
    }

    /// The single-flight re-check under the in-flight lock: a find is
    /// a genuine hit (counted, recency refreshed), but a second miss
    /// of the same logical lookup is not re-counted — `misses` stays
    /// one per cold lookup.
    fn recheck(&mut self, key: &PlanKey) -> Option<Arc<V>> {
        self.tick += 1;
        let (plan, used) = self.map.get_mut(key)?;
        *used = self.tick;
        self.hits += 1;
        telemetry::global().plan_cache_hits.inc();
        Some(Arc::clone(plan))
    }

    /// Inserts a freshly built plan, evicting the least-recently-used
    /// entry when full. Counts nothing (the miss was recorded by
    /// [`PlanCache::get`]); if a concurrent builder won the race the
    /// newer plan simply replaces it — equal keys produce equal plans.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<V>) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (_, used))| *used).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
                telemetry::global().plan_cache_evictions.inc();
            }
        }
        self.map.insert(key, (plan, self.tick));
    }

    /// Current observability counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            builds: 0,
            waits: 0,
        }
    }

    /// Drops every cached plan and resets the statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

/// Outcome slot of an in-flight build, shared between the builder and
/// its waiters.
struct BuildState<V> {
    /// `None` while building; `Some(Some(plan))` on success;
    /// `Some(None)` when the builder failed or panicked (waiters retry).
    done: Mutex<Option<Option<Arc<V>>>>,
    cv: Condvar,
}

impl<V> BuildState<V> {
    fn new() -> Self {
        BuildState { done: Mutex::new(None), cv: Condvar::new() }
    }

    fn publish(&self, outcome: Option<Arc<V>>) {
        let mut done = relock(&self.done);
        if done.is_none() {
            *done = Some(outcome);
        }
        drop(done);
        self.cv.notify_all();
    }

    fn wait(&self) -> Option<Arc<V>> {
        let mut done = relock(&self.done);
        while done.is_none() {
            done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
        done.clone().expect("loop exits only when set")
    }
}

/// Removes the in-flight entry and wakes waiters no matter how the
/// build ends — including by panic, so an induced build panic neither
/// wedges waiters nor poisons the cache for later preparations.
struct BuildCleanup<'a, V> {
    cache: &'a SharedPlanCache<V>,
    key: &'a PlanKey,
    state: &'a Arc<BuildState<V>>,
}

impl<V> Drop for BuildCleanup<'_, V> {
    fn drop(&mut self) {
        // Publish the failure sentinel unless a result already landed.
        self.state.publish(None);
        relock(&self.cache.building).remove(self.key);
    }
}

/// A concurrency-safe [`PlanCache`]: many threads may prepare kernels at
/// once, and concurrent requests for the *same* key perform **exactly
/// one** build — the first requester builds (with no lock held, so
/// different keys compile in parallel), everyone else blocks until the
/// plan lands and receives the same [`Arc`]. A build that fails or
/// panics wakes its waiters, which retry (one becomes the new builder);
/// all locks recover from poisoning, so a panicking build never
/// disables preparation for the rest of the process.
#[derive(Debug)]
pub struct SharedPlanCache<V> {
    lru: Mutex<PlanCache<V>>,
    building: Mutex<HashMap<PlanKey, Arc<BuildState<V>>>>,
    builds: AtomicU64,
    waits: AtomicU64,
}

impl<V> std::fmt::Debug for BuildState<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BuildState")
    }
}

impl<V> SharedPlanCache<V> {
    /// A shared cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        SharedPlanCache {
            lru: Mutex::new(PlanCache::new(capacity)),
            building: Mutex::new(HashMap::new()),
            builds: AtomicU64::new(0),
            waits: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, building it with `build` on a miss. Exactly one
    /// concurrent caller builds per key; the rest wait and share the
    /// result. `build` returns the plan plus a rider of side products
    /// (`T`); the rider is returned only to the caller whose closure
    /// actually ran (`None` on hits and waits).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error to the builder. Waiters on a
    /// failed build retry — with the same key and a deterministic
    /// builder they reproduce the same error themselves.
    pub fn get_or_build<T, E>(
        &self,
        key: &PlanKey,
        build: impl FnOnce() -> Result<(V, T), E>,
    ) -> Result<(Arc<V>, Option<T>), E> {
        let mut build = Some(build);
        loop {
            if let Some(plan) = relock(&self.lru).get(key) {
                return Ok((plan, None));
            }
            let (state, is_builder) = {
                let mut building = relock(&self.building);
                match building.get(key) {
                    Some(state) => (Arc::clone(state), false),
                    None => {
                        // Re-check the LRU under the in-flight lock: a
                        // build that completed between the first lookup
                        // and here inserted its plan *before* removing
                        // its in-flight entry, so finding neither entry
                        // nor plan proves nobody built this key — the
                        // single-flight guarantee needs that proof.
                        if let Some(plan) = relock(&self.lru).recheck(key) {
                            return Ok((plan, None));
                        }
                        let state = Arc::new(BuildState::new());
                        building.insert(key.clone(), Arc::clone(&state));
                        (state, true)
                    }
                }
            };
            if !is_builder {
                self.waits.fetch_add(1, Ordering::Relaxed);
                telemetry::global().plan_cache_waits.inc();
                match state.wait() {
                    Some(plan) => return Ok((plan, None)),
                    None => continue, // builder failed; retry (maybe build)
                }
            }
            self.builds.fetch_add(1, Ordering::Relaxed);
            telemetry::global().plan_cache_builds.inc();
            let cleanup = BuildCleanup { cache: self, key, state: &state };
            // The build runs with no lock held; a panic here unwinds
            // through `cleanup`, which wakes waiters and clears the
            // in-flight entry.
            let built = (build.take().expect("the builder role is taken at most once"))();
            return match built {
                Ok((plan, rider)) => {
                    let plan = Arc::new(plan);
                    relock(&self.lru).insert(key.clone(), Arc::clone(&plan));
                    state.publish(Some(Arc::clone(&plan)));
                    drop(cleanup);
                    Ok((plan, Some(rider)))
                }
                Err(e) => {
                    drop(cleanup); // publishes the failure sentinel
                    Err(e)
                }
            };
        }
    }

    /// Current observability counters (LRU stats plus executed builds
    /// and single-flight waits).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            builds: self.builds.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            ..relock(&self.lru).stats()
        }
    }

    /// Drops every cached plan and resets the statistics.
    pub fn clear(&self) {
        relock(&self.lru).clear();
        self.builds.store(0, Ordering::Relaxed);
        self.waits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(spec: &str) -> PlanKey {
        PlanKey { spec: spec.into(), symmetry: String::new(), bindings: Vec::new() }
    }

    /// The miss-then-insert protocol the production caller follows.
    fn get_or_build(
        cache: &mut PlanCache<u32>,
        k: PlanKey,
        build: impl FnOnce() -> u32,
    ) -> Arc<u32> {
        match cache.get(&k) {
            Some(plan) => plan,
            None => {
                let plan = Arc::new(build());
                cache.insert(k, Arc::clone(&plan));
                plan
            }
        }
    }

    #[test]
    fn hit_returns_same_plan() {
        let mut cache: PlanCache<u32> = PlanCache::new(4);
        let a = get_or_build(&mut cache, key("a"), || 1);
        let b = get_or_build(&mut cache, key("a"), || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache: PlanCache<u32> = PlanCache::new(2);
        get_or_build(&mut cache, key("a"), || 1);
        get_or_build(&mut cache, key("b"), || 2);
        // Touch a, then insert c: b is the LRU victim.
        get_or_build(&mut cache, key("a"), || panic!());
        get_or_build(&mut cache, key("c"), || 3);
        assert_eq!(cache.stats().evictions, 1);
        // a still cached, b rebuilt.
        get_or_build(&mut cache, key("a"), || panic!());
        let mut rebuilt = false;
        get_or_build(&mut cache, key("b"), || {
            rebuilt = true;
            2
        });
        assert!(rebuilt);
    }

    #[test]
    fn failed_builds_cache_nothing() {
        let mut cache: PlanCache<u32> = PlanCache::new(2);
        // A miss whose build fails simply never inserts.
        assert!(cache.get(&key("a")).is_none());
        assert_eq!(cache.stats().entries, 0);
        let ok = get_or_build(&mut cache, key("a"), || 7);
        assert_eq!(*ok, 7);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn shared_cache_builds_once_under_contention() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        let cache: SharedPlanCache<u32> = SharedPlanCache::new(8);
        let built = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    barrier.wait();
                    let (plan, _) = cache
                        .get_or_build::<(), ()>(&key("contended"), || {
                            built.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so waiters really wait.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok((7, ()))
                        })
                        .unwrap();
                    assert_eq!(*plan, 7);
                });
            }
        });
        assert_eq!(built.load(Ordering::SeqCst), 1, "exactly one build per key");
        let stats = cache.stats();
        assert_eq!(stats.builds, 1);
        // Every thread got the plan exactly one way: by building it, by
        // waiting on the in-flight build, or by hitting the LRU after
        // the build published.
        assert_eq!(stats.builds + stats.waits + stats.hits, 8);
    }

    #[test]
    fn shared_cache_recovers_from_build_panic() {
        let cache: SharedPlanCache<u32> = SharedPlanCache::new(8);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.get_or_build::<(), ()>(&key("k"), || panic!("induced build panic"));
        }));
        assert!(panicked.is_err());
        // The cache is not poisoned: the same key builds fine now.
        let (plan, rider) = cache.get_or_build::<(), ()>(&key("k"), || Ok((3, ()))).unwrap();
        assert_eq!(*plan, 3);
        assert!(rider.is_some(), "the retry actually built");
        // And a concurrent waiter during a panicking build retries
        // rather than hanging.
        let cache2: SharedPlanCache<u32> = SharedPlanCache::new(8);
        std::thread::scope(|s| {
            let panicker = s.spawn(|| {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ =
                        cache2.get_or_build::<(), ()>(&key("k"), || -> Result<(u32, ()), ()> {
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            panic!("induced");
                        });
                }));
            });
            let waiter = s.spawn(|| {
                // Give the panicker a head start at claiming the build.
                std::thread::sleep(std::time::Duration::from_millis(5));
                let (plan, _) = cache2.get_or_build::<(), ()>(&key("k"), || Ok((9, ()))).unwrap();
                assert_eq!(*plan, 9);
            });
            panicker.join().unwrap();
            waiter.join().unwrap();
        });
    }

    #[test]
    fn shared_cache_counts_evictions() {
        // Eviction observability: a full shared cache reports every LRU
        // eviction through its stats — the serving layer's `stats` verb
        // surfaces this so operators can see a thrashing plan cache.
        let cache: SharedPlanCache<u32> = SharedPlanCache::new(2);
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            let _ = cache.get_or_build::<(), ()>(&key(k), || Ok((v, ()))).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1, "inserting 3 keys into capacity 2 evicts one");
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.builds, 3);
        // Rebuilding the evicted key (LRU: `a`) evicts again.
        let (plan, rider) = cache.get_or_build::<(), ()>(&key("a"), || Ok((1, ()))).unwrap();
        assert_eq!(*plan, 1);
        assert!(rider.is_some(), "the evicted key really rebuilt");
        assert_eq!(cache.stats().evictions, 2);
        // Clearing resets the counter with the rest of the stats.
        cache.clear();
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn shared_cache_build_errors_propagate_and_cache_nothing() {
        let cache: SharedPlanCache<u32> = SharedPlanCache::new(8);
        let r = cache.get_or_build(&key("e"), || Err::<(u32, ()), &str>("nope"));
        assert_eq!(r.unwrap_err(), "nope");
        assert_eq!(cache.stats().entries, 0);
        let (plan, _) = cache.get_or_build::<(), ()>(&key("e"), || Ok((5, ()))).unwrap();
        assert_eq!(*plan, 5);
    }

    #[test]
    fn shared_cache_waiters_share_the_builders_arc() {
        let cache: SharedPlanCache<u32> = SharedPlanCache::new(8);
        let (first, rider) = cache.get_or_build::<(), ()>(&key("a"), || Ok((1, ()))).unwrap();
        assert!(rider.is_some());
        let (second, rider) =
            cache.get_or_build::<(), ()>(&key("a"), || panic!("must not rebuild")).unwrap();
        assert!(rider.is_none());
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn key_is_value_insensitive() {
        use systec_tensor::{CooTensor, SparseTensor, Tensor, CSR};
        let mut coo1 = CooTensor::new(vec![3, 3]);
        coo1.push(&[0, 1], 1.0);
        let mut coo2 = CooTensor::new(vec![3, 3]);
        coo2.push(&[2, 2], 9.0);
        let mk = |coo: &CooTensor| {
            let mut m = HashMap::new();
            m.insert("A".to_string(), Tensor::Sparse(SparseTensor::from_coo(coo, &CSR).unwrap()));
            m
        };
        let k1 = PlanKey::new("spec", "sym", &mk(&coo1));
        let k2 = PlanKey::new("spec", "sym", &mk(&coo2));
        assert_eq!(k1, k2, "same formats+dims must key identically");
        let mut coo3 = CooTensor::new(vec![4, 4]);
        coo3.push(&[0, 1], 1.0);
        let k3 = PlanKey::new("spec", "sym", &mk(&coo3));
        assert_ne!(k1, k3, "different dims must key differently");
    }
}
