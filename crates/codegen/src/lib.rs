//! # systec-codegen
//!
//! The compiled execution backend of the SySTeC reproduction: lowered
//! programs ([`systec_exec::LoweredProgram`]) are compiled once into a
//! flat, register-based **bytecode program** and executed by a tight VM,
//! replacing the tree-walking interpreter on the hot path.
//!
//! What compilation resolves ahead of time (the costs the interpreter
//! pays on every node visit):
//!
//! * **Slots, not names** — every tensor, index, scalar and sparse-path
//!   position is a flat register index; the run loop never hashes.
//! * **Monomorphized loops** — each loop compiles to a head/advance pair
//!   specialized for its driver's [`systec_tensor::LevelFormat`]: a
//!   counted dense loop, a compressed `pos`/`crd` walk with the lifted
//!   bounds applied by one binary search at entry, or a run-length walk.
//! * **Vectorized innermost loops** — conforming innermost loops
//!   collapse into single vector-loop instructions with bulk counter
//!   accounting: counted loops, compressed and run-length drivers,
//!   two-way sparse–sparse intersections (a galloping merge replaces
//!   the per-step probe binary search), and random-access gather
//!   operands (leaf-varying gathers cache their invariant prefix path
//!   and advance a monotone cursor).
//! * **Fused loop bodies** — a compile-time pattern matcher (`fuse`)
//!   lowers the common vector-loop bodies (dot, axpy, scale-store,
//!   gathered variants, SSYMV's dot-axpy pair, and multi-store jams)
//!   to closed-form monomorphized loops: accumulators in machine
//!   registers, operands resolved to slices at loop entry, no
//!   per-coordinate step dispatch, invariant counter contributions
//!   accounted in bulk. Unmatched bodies keep the general step list —
//!   selection never changes results or counters. A caller can
//!   additionally trade counter exactness for speed with
//!   [`CounterMode::Off`] on the [`ExecContext`].
//! * **Hoisted branches** — residual conditionals become explicit
//!   compare-and-jump chains between basic blocks; loop bounds are
//!   evaluated once at loop entry.
//! * **Three-address expressions** — right-hand sides flatten into
//!   register ops; strided addresses carry their strides inline.
//!
//! Execution preserves [`systec_exec::Counters`] **exactly** — reads,
//! flops, writes and iterations match the interpreter bit-for-bit, so
//! the paper's memory-traffic and FLOP-ratio figures can be reproduced
//! on either backend.
//!
//! ## Execution contexts & parallelism
//!
//! All per-run mutable state lives in a caller-owned [`ExecContext`]:
//! threading one context (plus a reused [`Counters`]) through
//! [`CompiledKernel::run_with`] makes the steady-state serial path
//! allocation-free. Compilation additionally proves plans
//! *row-splittable* when every output is either addressed with the
//! top-level loop index as its leading subscript (chunks write disjoint
//! row slices) or reduced through one mergeable operator (workers
//! reduce into private buffers). Splittable plans dispatch coordinate
//! chunks across scoped worker threads under
//! [`Parallelism::Threads`], each worker over its own register files
//! and counter bank, merged deterministically in fixed worker order —
//! merged counters equal the serial interpreter's exactly, and outputs
//! are bit-identical run to run for a fixed thread count.
//!
//! The [`PlanCache`] memoizes compiled plans under a [`PlanKey`] of
//! (kernel spec, symmetry declarations, input formats, dims), making
//! repeated invocations — the paper's prepare-once/run-many methodology
//! — skip hoisting, lowering and compilation entirely; the
//! [`SharedPlanCache`] wrapper adds single-flight concurrency (one
//! build per key under contention, panic-safe).
//!
//! ## Example
//!
//! ```
//! use std::collections::HashMap;
//! use systec_ir::build::*;
//! use systec_ir::Stmt;
//! use systec_tensor::{CooTensor, SparseTensor, Tensor, CSR};
//! use systec_exec::{alloc_outputs, hoist_conditions, lower, run_lowered};
//! use systec_codegen::CompiledKernel;
//!
//! // y[i] += A[i, j] * x[j] over CSR A.
//! let prog = Stmt::loops(
//!     [idx("i"), idx("j")],
//!     assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
//! );
//! let mut coo = CooTensor::new(vec![2, 2]);
//! coo.push(&[0, 1], 3.0);
//! let mut inputs = HashMap::new();
//! inputs.insert("A".to_string(), Tensor::Sparse(SparseTensor::from_coo(&coo, &CSR).unwrap()));
//! inputs.insert("x".to_string(), Tensor::Dense(systec_tensor::DenseTensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap()));
//! let outputs_init = alloc_outputs(&prog, &inputs).unwrap();
//!
//! let lowered = lower(&hoist_conditions(prog), &inputs, &outputs_init).unwrap();
//! let kernel = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
//!
//! // The compiled kernel and the interpreter agree on results and counters.
//! let mut out_vm = outputs_init.clone();
//! let c_vm = kernel.run(&inputs, &mut out_vm).unwrap();
//! let mut out_interp = outputs_init.clone();
//! let c_interp = run_lowered(&lowered, &inputs, &mut out_interp).unwrap();
//! assert_eq!(out_vm["y"].get(&[0]), 6.0);
//! assert_eq!(out_vm["y"], out_interp["y"]);
//! assert_eq!(c_vm, c_interp);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytecode;
mod cache;
mod compile;
mod context;
mod fuse;
mod vm;

use std::collections::HashMap;

use systec_exec::{Counters, ExecError, LoweredProgram};
use systec_tensor::{DenseTensor, Tensor};

pub use cache::{BindingSig, CacheStats, PlanCache, PlanKey, SharedPlanCache};
pub use context::{ContextPool, CounterMode, ExecContext, LaneMode, PooledContext};

use systec_ir::AssignOp;

/// How one output of a row-splittable plan recombines when coordinate
/// chunks of the outermost loops execute on *separate* workers — the
/// PR 2 splittability proof exposed for cross-process merges.
///
/// A shard that executes chunk `k` of `n` (see
/// [`CompiledKernel::run_chunk_with`]) produces a full-shape output
/// buffer; this classification tells the merging side how to combine
/// the `n` buffers into the single-process result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MergeKind {
    /// Row-owned: chunk `k` wrote exactly rows
    /// `[k*extent/n, (k+1)*extent/n)` of the output (the leading
    /// subscript is the split loop's index), so the merged result
    /// concatenates each shard's window rows in shard order.
    Rows,
    /// Reduction-merged: every chunk accumulated a partial through this
    /// operator over identity-initialized cells; the merged result folds
    /// the partials elementwise in fixed shard order.
    Reduce(AssignOp),
}

/// How many workers execute a kernel invocation.
///
/// Parallel execution requires the compiler to have proved the plan
/// row-splittable (see [`CompiledKernel::splittable`]); otherwise
/// [`Parallelism::Threads`] silently degrades to serial execution.
/// Whatever the mode, the work counters are **exactly** the serial
/// interpreter's (per-worker banks merge by integer sums), and outputs
/// are deterministic: a fixed (plan, data, thread count) triple produces
/// bit-identical results on every run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Parallelism {
    /// One worker on the calling thread — the default.
    #[default]
    Serial,
    /// Split the outermost loops' coordinate ranges across this many
    /// scoped worker threads.
    Threads(usize),
}

impl Parallelism {
    /// Normalizes a thread-count request: `0` means "all cores", `1`
    /// means [`Parallelism::Serial`].
    pub fn threads(n: usize) -> Parallelism {
        match n {
            0 => Parallelism::Threads(rayon::current_num_threads()),
            1 => Parallelism::Serial,
            n => Parallelism::Threads(n),
        }
    }

    /// The number of workers this mode asks for.
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// A lowered program compiled to bytecode, ready to run repeatedly.
///
/// Immutable after compilation: share it freely (e.g. through the
/// [`PlanCache`]) and run it concurrently from multiple threads.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    program: bytecode::BytecodeProgram,
}

impl CompiledKernel {
    /// Compiles a lowered program against the shapes and formats of
    /// concrete bindings (values are ignored; the result may be reused
    /// with any tensors of the same formats and dims).
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if a tensor the program references is
    /// missing from the bindings.
    pub fn compile(
        program: &LoweredProgram,
        inputs: &HashMap<String, Tensor>,
        outputs: &HashMap<String, DenseTensor>,
    ) -> Result<CompiledKernel, ExecError> {
        Ok(CompiledKernel { program: compile::compile(program, inputs, outputs)? })
    }

    /// Executes the kernel: `outputs` are updated in place, and the work
    /// counters (identical to the interpreter's) are returned.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if a binding is missing or its shape
    /// differs from the shapes the kernel was compiled against.
    pub fn run(
        &self,
        inputs: &HashMap<String, Tensor>,
        outputs: &mut HashMap<String, DenseTensor>,
    ) -> Result<Counters, ExecError> {
        let mut ctx = ExecContext::new();
        let mut counters = Counters::new();
        self.run_with(inputs, outputs, &mut ctx, Parallelism::Serial, &mut counters)?;
        Ok(counters)
    }

    /// Executes the kernel over caller-owned state: `ctx` holds every
    /// per-run buffer (register files, scratch, counter banks), so the
    /// steady-state serial path performs **zero** allocations, and
    /// `counters` is updated in place (entries are inserted only the
    /// first time a tensor name appears). With
    /// [`Parallelism::Threads`] and a [splittable](CompiledKernel::splittable)
    /// plan, chunks of the outermost loops run on scoped worker threads
    /// and merge deterministically; counters still match the serial
    /// interpreter exactly.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if a binding is missing or its shape
    /// differs from the shapes the kernel was compiled against.
    pub fn run_with(
        &self,
        inputs: &HashMap<String, Tensor>,
        outputs: &mut HashMap<String, DenseTensor>,
        ctx: &mut ExecContext,
        parallelism: Parallelism,
        counters: &mut Counters,
    ) -> Result<(), ExecError> {
        vm::execute(&self.program, inputs, outputs, ctx, parallelism, counters)
    }

    /// Executes coordinate chunk `k` of `n` serially: the split loops
    /// are clamped to `[k*extent/n, (k+1)*extent/n)` and all outputs
    /// are bound at full shape — row-owned outputs receive only their
    /// window rows, reduced outputs accumulate this chunk's partial on
    /// top of the caller's initial values. Running every chunk and
    /// merging per [`CompiledKernel::split_outputs`] (counters by
    /// integer sums) reproduces the serial run exactly; this is the
    /// cross-process analogue of [`Parallelism::Threads`].
    ///
    /// # Errors
    ///
    /// [`ExecError::InvalidKernel`] when the plan is not
    /// [splittable](CompiledKernel::splittable) or `(k, n)` is not a
    /// valid chunk ordinal; binding errors as in
    /// [`CompiledKernel::run_with`].
    pub fn run_chunk_with(
        &self,
        inputs: &HashMap<String, Tensor>,
        outputs: &mut HashMap<String, DenseTensor>,
        ctx: &mut ExecContext,
        counters: &mut Counters,
        k: usize,
        n: usize,
    ) -> Result<(), ExecError> {
        if self.program.split.is_none() {
            return Err(ExecError::InvalidKernel {
                message: "plan is not splittable; chunked execution is not legal".into(),
            });
        }
        if n == 0 || k >= n {
            return Err(ExecError::InvalidKernel {
                message: format!("chunk ordinal {k} of {n} is out of range"),
            });
        }
        vm::execute_chunk(&self.program, inputs, outputs, ctx, counters, k, n)
    }

    /// Whether the compiler proved this plan row-parallelizable (the
    /// outermost loops write disjoint output slices or reduce through a
    /// mergeable operator). Non-splittable plans execute serially
    /// regardless of the requested [`Parallelism`].
    pub fn splittable(&self) -> bool {
        self.program.split.is_some()
    }

    /// The per-output merge classification of a splittable plan —
    /// `(output name, merge kind)` for every output the split loops
    /// touch, in plan order — or `None` when the plan is not
    /// splittable. This is the contract a cross-process merger needs to
    /// recombine the buffers produced by
    /// [`CompiledKernel::run_chunk_with`].
    pub fn split_outputs(&self) -> Option<Vec<(String, MergeKind)>> {
        self.program.split.as_ref().map(|split| {
            split
                .outputs
                .iter()
                .map(|&(slot, mode)| {
                    let kind = match mode {
                        bytecode::ParOut::Owned => MergeKind::Rows,
                        bytecode::ParOut::Reduced(op) => MergeKind::Reduce(op),
                    };
                    (self.program.tensors[slot].name.clone(), kind)
                })
                .collect()
        })
    }

    /// Number of bytecode instructions (observability / tests).
    pub fn len(&self) -> usize {
        self.program.instrs.len()
    }

    /// A humanly readable instruction listing (observability / tests).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (pc, instr) in self.program.instrs.iter().enumerate() {
            let _ = writeln!(out, "{pc:4}: {instr:?}");
        }
        out
    }

    /// Whether the program is empty (it never is; present for lint
    /// symmetry with [`CompiledKernel::len`]).
    pub fn is_empty(&self) -> bool {
        self.program.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_exec::{alloc_outputs, hoist_conditions, lower, run_lowered};
    use systec_ir::build::*;
    use systec_ir::{AssignOp, Stmt};
    use systec_tensor::{CooTensor, LevelFormat, SparseTensor, CSR};

    fn csr(entries: &[(usize, usize, f64)], n: usize) -> Tensor {
        let mut coo = CooTensor::new(vec![n, n]);
        for &(i, j, v) in entries {
            coo.push(&[i, j], v);
        }
        Tensor::Sparse(SparseTensor::from_coo(&coo, &CSR).unwrap())
    }

    fn dense_vec(v: &[f64]) -> Tensor {
        Tensor::Dense(DenseTensor::from_vec(vec![v.len()], v.to_vec()).unwrap())
    }

    /// Compiles and runs `prog` on both backends, asserting identical
    /// outputs and counters; returns the VM outputs and counters.
    fn both(
        prog: &Stmt,
        inputs: &HashMap<String, Tensor>,
    ) -> (HashMap<String, DenseTensor>, Counters) {
        let hoisted = hoist_conditions(prog.clone());
        let outputs_init = alloc_outputs(&hoisted, inputs).unwrap();
        let lowered = lower(&hoisted, inputs, &outputs_init).unwrap();
        let kernel = CompiledKernel::compile(&lowered, inputs, &outputs_init).unwrap();
        let mut out_vm = outputs_init.clone();
        let c_vm = kernel.run(inputs, &mut out_vm).unwrap();
        let mut out_interp = outputs_init;
        let c_interp = run_lowered(&lowered, inputs, &mut out_interp).unwrap();
        for (name, t) in &out_interp {
            assert_eq!(out_vm[name], *t, "output {name} differs between backends");
        }
        assert_eq!(c_vm, c_interp, "counters differ between backends");
        (out_vm, c_vm)
    }

    #[test]
    fn spmv_concordant_driver() {
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 1, 2.0), (1, 0, 3.0), (2, 2, 4.0)], 3));
        inputs.insert("x".to_string(), dense_vec(&[1.0, 10.0, 100.0]));
        let (out, c) = both(&prog, &inputs);
        assert_eq!(out["y"].get(&[0]), 20.0);
        assert_eq!(out["y"].get(&[1]), 3.0);
        assert_eq!(out["y"].get(&[2]), 400.0);
        assert_eq!(c.reads_of("A"), 3);
    }

    #[test]
    fn triangular_bound_restricts_walk() {
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::guarded(
                le("j", "i"),
                assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
            ),
        );
        let mut inputs = HashMap::new();
        inputs
            .insert("A".to_string(), csr(&[(0, 0, 1.0), (0, 2, 5.0), (1, 0, 2.0), (2, 2, 3.0)], 3));
        let (out, c) = both(&prog, &inputs);
        assert_eq!(out["s"].get(&[]), 6.0);
        assert_eq!(c.reads_of("A"), 3);
    }

    #[test]
    fn min_plus_semiring_missing_edges() {
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign_op(
                access("y", ["i"]),
                AssignOp::Min,
                add([access("A", ["i", "j"]), access("d", ["j"])]),
            ),
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 1, 1.0), (1, 2, 2.0)], 3));
        inputs.insert("d".to_string(), dense_vec(&[0.0, 5.0, 50.0]));
        let hoisted = hoist_conditions(prog.clone());
        let mut outputs_init = alloc_outputs(&hoisted, &inputs).unwrap();
        outputs_init.insert("y".to_string(), DenseTensor::filled(vec![3], f64::INFINITY));
        let lowered = lower(&hoisted, &inputs, &outputs_init).unwrap();
        let kernel = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
        let mut out_vm = outputs_init.clone();
        kernel.run(&inputs, &mut out_vm).unwrap();
        let mut out_interp = outputs_init;
        run_lowered(&lowered, &inputs, &mut out_interp).unwrap();
        assert_eq!(out_vm["y"], out_interp["y"]);
        assert_eq!(out_vm["y"].get(&[0]), 6.0);
        assert_eq!(out_vm["y"].get(&[2]), f64::INFINITY);
    }

    #[test]
    fn let_skip_if_missing_and_workspace() {
        // let a = A[i, j]: w += a * x[j]; y[j] += a * x[i]
        let body = Stmt::Let {
            name: "a".into(),
            value: access("A", ["i", "j"]).into(),
            body: Box::new(Stmt::block([
                assign(access("y", ["i"]), mul([scalar("a"), access("x", ["j"]).into()])),
                assign(access("y", ["j"]), mul([scalar("a"), access("x", ["i"]).into()])),
            ])),
        };
        let prog = Stmt::loops([idx("i"), idx("j")], body);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 1, 2.0)], 2));
        inputs.insert("x".to_string(), dense_vec(&[1.0, 10.0]));
        let (out, c) = both(&prog, &inputs);
        assert_eq!(out["y"].get(&[0]), 20.0);
        assert_eq!(out["y"].get(&[1]), 2.0);
        assert_eq!(c.reads_of("A"), 1);
    }

    #[test]
    fn rle_driver_loop() {
        let mut coo = CooTensor::new(vec![2, 6]);
        for j in 1..5 {
            coo.push(&[0, j], 2.5); // one run of four
        }
        coo.push(&[1, 0], 1.0);
        let rle =
            SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::RunLength]).unwrap();
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), Tensor::Sparse(rle));
        let (out, c) = both(&prog, &inputs);
        assert_eq!(out["s"].get(&[]), 4.0 * 2.5 + 1.0);
        assert_eq!(c.iterations, 2 + 5);
    }

    #[test]
    fn lookup_table_and_cmpval() {
        let rhs = mul([
            systec_ir::Expr::Lookup {
                table: vec![3.0, 11.0],
                index: Box::new(systec_ir::Expr::CmpVal {
                    op: systec_ir::CmpOp::Eq,
                    lhs: idx("i"),
                    rhs: idx("j"),
                }),
            },
            access("A", ["i", "j"]).into(),
        ]);
        let prog = Stmt::loops([idx("i"), idx("j")], assign(access("s", [] as [&str; 0]), rhs));
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 0, 1.0), (0, 1, 1.0)], 2));
        let (out, _) = both(&prog, &inputs);
        assert_eq!(out["s"].get(&[]), 14.0);
    }

    #[test]
    fn residual_or_condition() {
        let prog = Stmt::loops(
            [idx("j"), idx("i")],
            Stmt::guarded(
                or([eq("i", "j"), gt("i", "j")]),
                assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
            ),
        );
        let mut inputs = HashMap::new();
        inputs.insert(
            "A".to_string(),
            csr(&[(0, 0, 1.0), (0, 1, 10.0), (1, 0, 100.0), (1, 1, 1000.0)], 2),
        );
        let (out, _) = both(&prog, &inputs);
        assert_eq!(out["s"].get(&[]), 1101.0);
    }

    /// Compiles a program and returns its disassembly (selection tests).
    fn disassembly(prog: &Stmt, inputs: &HashMap<String, Tensor>) -> String {
        let hoisted = hoist_conditions(prog.clone());
        let outputs_init = alloc_outputs(&hoisted, inputs).unwrap();
        let lowered = lower(&hoisted, inputs, &outputs_init).unwrap();
        CompiledKernel::compile(&lowered, inputs, &outputs_init).unwrap().disassemble()
    }

    fn rle_matrix(n: usize) -> Tensor {
        let mut coo = CooTensor::new(vec![n, n]);
        for i in 0..n {
            for j in 1..4 {
                coo.push(&[i, j], 2.0);
            }
        }
        Tensor::Sparse(
            SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::RunLength]).unwrap(),
        )
    }

    #[test]
    fn intersection_loops_vectorize() {
        // Two compressed fibers co-iterating: the general item form for
        // an output-addressed body, the fused dot form for the scalar
        // accumulation (and correctness of both via `both`).
        let isect = Stmt::loops(
            [idx("i"), idx("j"), idx("k")],
            assign(
                access("C", ["i", "j"]),
                mul([access("A", ["i", "k"]), access("B", ["j", "k"])]),
            ),
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 1, 2.0), (1, 0, 3.0), (1, 1, 5.0)], 3));
        inputs.insert("B".to_string(), csr(&[(0, 1, 7.0), (2, 0, 1.0), (2, 1, 2.0)], 3));
        let dis = disassembly(&isect, &inputs);
        assert!(dis.contains("VecIsectLoop"), "output-addressed intersection:\n{dis}");
        let (out, c) = both(&isect, &inputs);
        // Row 1 of A ∩ row 2 of B share columns {0, 1}.
        assert_eq!(out["C"].get(&[1, 2]), 3.0 * 1.0 + 5.0 * 2.0);
        // Hits per (i, j) pair: (0,0)→{1}, (0,2)→{1}, (1,0)→{1},
        // (1,2)→{0,1}; B's empty row 1 and A's empty row 2 contribute
        // none.
        assert_eq!(c.reads_of("B"), 5, "probe reads count only on hits");

        let dot = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::Workspace {
                name: "w".into(),
                init: 0.0,
                body: Box::new(Stmt::block([
                    Stmt::loops(
                        [idx("k")],
                        Stmt::Assign {
                            lhs: systec_ir::Lhs::Scalar("w".into()),
                            op: AssignOp::Add,
                            rhs: mul([access("A", ["i", "k"]), access("B", ["j", "k"])]),
                        },
                    ),
                    assign(access("C", ["i", "j"]), scalar("w")),
                ])),
            },
        );
        let dis = disassembly(&dot, &inputs);
        assert!(
            dis.contains("VecIsectLoop") && dis.contains("kind: Dot"),
            "scalar accumulation selects the fused dot body:\n{dis}"
        );
        let (out, _) = both(&dot, &inputs);
        assert_eq!(out["C"].get(&[1, 2]), 3.0 * 1.0 + 5.0 * 2.0);
    }

    #[test]
    fn rle_driver_vectorizes() {
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), rle_matrix(5));
        inputs.insert("x".to_string(), dense_vec(&[1.0, 10.0, 100.0, 1000.0, 0.5]));
        let dis = disassembly(&prog, &inputs);
        assert!(dis.contains("VecRleLoop"), "run-length driver loop vectorizes:\n{dis}");
        let (out, c) = both(&prog, &inputs);
        assert_eq!(out["y"].get(&[0]), 2.0 * (10.0 + 100.0 + 1000.0));
        assert_eq!(c.reads_of("A"), 15, "one driver read per covered coordinate");
    }

    #[test]
    fn random_access_gather_vectorizes() {
        // B[j, i] binds j (mode 0) at the inner loop: a discordant read
        // that previously forced the whole loop onto general dispatch.
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("B", ["j", "i"])])),
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 1, 2.0), (2, 2, 4.0)], 3));
        inputs.insert("B".to_string(), csr(&[(1, 0, 10.0), (2, 1, 7.0)], 3));
        let dis = disassembly(&prog, &inputs);
        assert!(dis.contains("LoadGather"), "random reads gather inside the vector loop:\n{dis}");
        let (out, c) = both(&prog, &inputs);
        assert_eq!(out["y"].get(&[0]), 2.0 * 10.0);
        assert_eq!(out["y"].get(&[2]), 0.0, "B[2, 2] is unstored: the store annihilates");
        assert_eq!(c.reads_of("B"), 1, "gather reads count only on hits");
    }

    #[test]
    fn leaf_varying_gather_uses_invariant_prefix() {
        // s[] += A[k, i, j] * x[j] under loops (i, k, j): mode 0 binds
        // second (discordant), and only the leaf subscript varies in the
        // innermost loop — the gallop-cursor fast path.
        let prog = Stmt::loops(
            [idx("i"), idx("k"), idx("j")],
            assign(
                access("s", [] as [&str; 0]),
                mul([access("A", ["k", "i", "j"]), access("x", ["j"])]),
            ),
        );
        let mut coo = CooTensor::new(vec![3, 3, 3]);
        coo.push(&[0, 1, 0], 2.0);
        coo.push(&[0, 1, 2], 3.0);
        coo.push(&[2, 0, 1], 5.0);
        let mut inputs = HashMap::new();
        inputs.insert(
            "A".to_string(),
            Tensor::Sparse(
                SparseTensor::from_coo(
                    &coo,
                    &[LevelFormat::Dense, LevelFormat::Sparse, LevelFormat::Sparse],
                )
                .unwrap(),
            ),
        );
        inputs.insert("x".to_string(), dense_vec(&[1.0, 10.0, 100.0]));
        let dis = disassembly(&prog, &inputs);
        assert!(
            dis.contains("var_mode: Some(2)"),
            "leaf-varying gathers must take the cached-prefix cursor path:\n{dis}"
        );
        let (out, _) = both(&prog, &inputs);
        assert_eq!(out["s"].get(&[]), 2.0 * 1.0 + 3.0 * 100.0 + 5.0 * 10.0);
    }

    #[test]
    fn chunked_execution_merges_to_the_serial_result() {
        // One program with both output classes: y[i] is row-owned by
        // the split loop, s[] reduces through +. Running every chunk
        // serially and merging per split_outputs must reproduce the
        // serial run bit-for-bit, with counters summing exactly.
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::block([
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
                assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
            ]),
        );
        let mut inputs = HashMap::new();
        inputs.insert(
            "A".to_string(),
            csr(&[(0, 1, 2.0), (1, 0, 3.0), (1, 3, 5.0), (2, 2, 4.0), (3, 0, 7.0)], 4),
        );
        inputs.insert("x".to_string(), dense_vec(&[1.0, 10.0, 100.0, 1000.0]));
        let hoisted = hoist_conditions(prog);
        let outputs_init = alloc_outputs(&hoisted, &inputs).unwrap();
        let lowered = lower(&hoisted, &inputs, &outputs_init).unwrap();
        let kernel = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
        assert!(kernel.splittable());
        let classes = kernel.split_outputs().expect("splittable plans classify outputs");
        assert!(classes.contains(&("y".to_string(), MergeKind::Rows)), "{classes:?}");
        assert!(
            classes.contains(&("s".to_string(), MergeKind::Reduce(AssignOp::Add))),
            "{classes:?}"
        );

        let mut serial = outputs_init.clone();
        let serial_c = kernel.run(&inputs, &mut serial).unwrap();

        for n in [1usize, 2, 3, 4] {
            let mut merged = outputs_init.clone();
            let mut merged_c = Counters::new();
            let mut first_reduce = true;
            for k in 0..n {
                let mut outs = outputs_init.clone();
                let mut ctx = ExecContext::new();
                let mut c = Counters::new();
                kernel.run_chunk_with(&inputs, &mut outs, &mut ctx, &mut c, k, n).unwrap();
                merged_c.flops += c.flops;
                merged_c.writes += c.writes;
                merged_c.iterations += c.iterations;
                for (name, reads) in &c.reads {
                    *merged_c.reads.entry(name.clone()).or_insert(0) += reads;
                }
                for (name, kind) in &classes {
                    let partial = &outs[name];
                    match kind {
                        MergeKind::Rows => {
                            let extent = partial.dims()[0];
                            let stride = partial.as_slice().len() / extent;
                            let (lo, hi) = (k * extent / n * stride, (k + 1) * extent / n * stride);
                            let target = merged.get_mut(name).unwrap();
                            target.as_mut_slice()[lo..hi]
                                .copy_from_slice(&partial.as_slice()[lo..hi]);
                        }
                        MergeKind::Reduce(op) => {
                            let target = merged.get_mut(name).unwrap();
                            if first_reduce {
                                target.as_mut_slice().copy_from_slice(partial.as_slice());
                            } else {
                                for (cell, v) in
                                    target.as_mut_slice().iter_mut().zip(partial.as_slice())
                                {
                                    *cell = op.apply(*cell, *v);
                                }
                            }
                        }
                    }
                }
                first_reduce = false;
            }
            for (name, t) in &serial {
                assert_eq!(merged[name], *t, "output {name} differs at n={n}");
            }
            assert_eq!(merged_c, serial_c, "counters differ at n={n}");
        }
    }

    #[test]
    fn chunked_execution_rejects_unsplittable_plans_and_bad_ordinals() {
        // A transpose's scattered overwrites are not splittable.
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::Assign {
                lhs: systec_ir::Lhs::Tensor(access("C", ["j", "i"])),
                op: AssignOp::Overwrite,
                rhs: access("A", ["i", "j"]).into(),
            },
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 1, 2.0)], 2));
        let hoisted = hoist_conditions(prog);
        let outputs_init = alloc_outputs(&hoisted, &inputs).unwrap();
        let lowered = lower(&hoisted, &inputs, &outputs_init).unwrap();
        let kernel = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
        assert!(!kernel.splittable());
        assert!(kernel.split_outputs().is_none());
        let mut outs = outputs_init.clone();
        let mut ctx = ExecContext::new();
        let mut c = Counters::new();
        assert!(matches!(
            kernel.run_chunk_with(&inputs, &mut outs, &mut ctx, &mut c, 0, 2),
            Err(ExecError::InvalidKernel { .. })
        ));

        // A splittable plan still rejects out-of-range ordinals.
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        );
        inputs.insert("x".to_string(), dense_vec(&[1.0, 2.0]));
        let hoisted = hoist_conditions(prog);
        let outputs_init = alloc_outputs(&hoisted, &inputs).unwrap();
        let lowered = lower(&hoisted, &inputs, &outputs_init).unwrap();
        let kernel = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
        assert!(kernel.splittable());
        let mut outs = outputs_init.clone();
        assert!(matches!(
            kernel.run_chunk_with(&inputs, &mut outs, &mut ctx, &mut c, 2, 2),
            Err(ExecError::InvalidKernel { .. })
        ));
        assert!(matches!(
            kernel.run_chunk_with(&inputs, &mut outs, &mut ctx, &mut c, 0, 0),
            Err(ExecError::InvalidKernel { .. })
        ));
    }

    #[test]
    fn shape_mismatch_detected_at_run() {
        let prog = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        );
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), csr(&[(0, 1, 2.0)], 3));
        inputs.insert("x".to_string(), dense_vec(&[1.0, 10.0, 100.0]));
        let outputs_init = alloc_outputs(&prog, &inputs).unwrap();
        let lowered = lower(&prog, &inputs, &outputs_init).unwrap();
        let kernel = CompiledKernel::compile(&lowered, &inputs, &outputs_init).unwrap();
        // Swap in a smaller x: the plan no longer fits.
        inputs.insert("x".to_string(), dense_vec(&[1.0, 10.0]));
        let mut outs = outputs_init.clone();
        assert!(matches!(
            kernel.run(&inputs, &mut outs),
            Err(ExecError::BindingShapeMismatch { .. })
        ));
    }
}
