//! Crash-recovery end-to-end: the real `systec serve` binary, a real
//! `kill -9`, and a restart on the same `--data-dir`.
//!
//! The sequence the durable registry promises to survive:
//!
//! 1. serve with `--data-dir`, register tensors, prepare, run — and
//!    capture the run response as the byte-identical oracle;
//! 2. `SIGKILL` the server process (no drain, no journal flush beyond
//!    the write-ahead appends themselves);
//! 3. restart on the same `--data-dir`: every registered tensor is
//!    recovered, generation counters resume (not reset), and a
//!    re-prepared kernel reproduces the oracle byte-for-byte.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const REGISTER_A: &str = r#"{"op":"register_tensor","name":"A","dims":[4,4],"coo":[[0,1,2.0],[1,0,2.0],[2,3,1.5],[3,2,1.5],[1,1,0.5]]}"#;
const REGISTER_X: &str =
    r#"{"op":"register_tensor","name":"x","dims":[4],"dense":[1.0,2.0,3.0,4.0]}"#;
const PREPARE: &str =
    r#"{"op":"prepare","einsum":"for i, j: y[i] += A[i, j] * x[j]","sym":["A"],"threads":1}"#;

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `systec serve --data-dir dir` on an OS-assigned port and
    /// waits for its "listening on" banner.
    fn spawn(dir: &std::path::Path) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_systec"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--data-dir",
                dir.to_str().expect("utf-8 temp path"),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn systec serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner =
            lines.next().expect("server prints its listening banner").expect("readable banner");
        let addr = banner.rsplit(' ').next().expect("banner ends with the address").to_string();
        assert!(addr.contains(':'), "unexpected banner: {banner}");
        Server { child, addr }
    }

    fn connect(&self) -> TcpStream {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(&self.addr) {
                Ok(s) => return s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("cannot connect to {}: {e}", self.addr),
            }
        }
    }

    /// `kill -9`: no drain, no flush, no destructors.
    fn kill_dash_nine(&mut self) {
        self.child.kill().expect("SIGKILL the server");
        self.child.wait().expect("reap the server");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One request line in, one response line out.
fn exchange(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

fn field_u64(json: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\":");
    let rest = &json[json.find(&tag).unwrap_or_else(|| panic!("no {key} in {json}")) + tag.len()..];
    rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().unwrap()
}

#[test]
fn kill_nine_then_restart_recovers_tensors_generations_and_bytes() {
    let dir = std::env::temp_dir().join(format!("systec-crash-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Phase 1: register, prepare, run; capture the oracle.
    let mut server = Server::spawn(&dir);
    let (oracle, generation_before) = {
        let mut conn = server.connect();
        let r = exchange(&mut conn, REGISTER_A);
        assert!(r.starts_with("{\"ok\":true"), "{r}");
        let r = exchange(&mut conn, REGISTER_X);
        assert!(r.starts_with("{\"ok\":true"), "{r}");
        // Re-register x so the recovered generation counter is > 0.
        let r = exchange(&mut conn, REGISTER_X);
        assert!(r.starts_with("{\"ok\":true"), "{r}");
        let generation = field_u64(&r, "generation");
        assert_eq!(generation, 1, "second registration bumps the generation");
        let p = exchange(&mut conn, PREPARE);
        assert!(p.starts_with("{\"ok\":true"), "{p}");
        let kernel = field_u64(&p, "kernel");
        let oracle = exchange(&mut conn, &format!("{{\"op\":\"run\",\"kernel\":{kernel}}}"));
        assert!(oracle.starts_with("{\"ok\":true"), "{oracle}");
        (oracle, generation)
    };

    // Phase 2: kill -9. The process gets no chance to clean up.
    server.kill_dash_nine();

    // Phase 3: restart on the same --data-dir.
    let server = Server::spawn(&dir);
    let mut conn = server.connect();

    // Recovery is visible in stats: both tensors replayed.
    let stats = exchange(&mut conn, "{\"op\":\"stats\"}");
    assert!(stats.starts_with("{\"ok\":true"), "{stats}");
    assert_eq!(field_u64(&stats, "registry_tensors"), 2, "{stats}");
    assert!(field_u64(&stats, "recovery_replayed") >= 2, "{stats}");

    // Prepared kernels are process state, not registry state: the old
    // handle is gone, and re-preparing the same spec works against the
    // recovered tensors.
    let p = exchange(&mut conn, PREPARE);
    assert!(p.starts_with("{\"ok\":true"), "{p}");
    let kernel = field_u64(&p, "kernel");

    // The recovered data serves byte-identically to the pre-crash run.
    let rerun = exchange(&mut conn, &format!("{{\"op\":\"run\",\"kernel\":{kernel}}}"));
    assert_eq!(rerun, oracle, "post-recovery run must be byte-identical");

    // Generation counters resumed: the next x supersedes the pre-crash
    // generation instead of restarting from zero.
    let r = exchange(&mut conn, REGISTER_X);
    assert!(r.starts_with("{\"ok\":true"), "{r}");
    assert_eq!(
        field_u64(&r, "generation"),
        generation_before + 1,
        "generation counters must survive kill -9: {r}"
    );

    // Clean shutdown this time; the drain acknowledges before exit.
    let bye = exchange(&mut conn, "{\"op\":\"shutdown\"}");
    assert!(bye.contains("shutting_down"), "{bye}");
    let _ = std::fs::remove_dir_all(&dir);
}
