//! Cluster chaos tier: `kill -9` one shard of a live cluster
//! mid-stream and watch the blast radius stay contained.
//!
//! * requests owned by the dead shard answer a **retryable**
//!   `shard_unavailable` error — structured, never a dropped client
//!   connection;
//! * requests owned by the survivors keep serving **byte-identically**
//!   to their pre-crash responses;
//! * the restarted shard (same port, same `--data-dir`) rejoins: the
//!   router reconnects, the durable registry recovers the replicated
//!   tensors (generation counters resumed, not reset), and a
//!   re-prepared sharded kernel merges byte-identically to before the
//!   crash.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use systec::router::{route, HashRing, RouterConfig};

struct Worker {
    child: Child,
    addr: String,
    data_dir: std::path::PathBuf,
}

impl Worker {
    /// Spawns `systec serve` on `addr` with a durable registry in
    /// `dir`; `127.0.0.1:0` asks the OS for a port, a concrete `addr`
    /// rebinds it (the restart path).
    fn spawn(addr: &str, dir: &std::path::Path) -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_systec"))
            .args(["serve", "--addr", addr, "--data-dir", dir.to_str().expect("utf-8 temp path")])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn systec serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut banner = String::new();
        reader.read_line(&mut banner).expect("readable banner");
        let bound =
            banner.trim().rsplit(' ').next().expect("banner ends with the address").to_string();
        assert!(bound.contains(':'), "unexpected banner: {banner}");
        std::thread::spawn(move || {
            let _ = std::io::copy(&mut reader, &mut std::io::sink());
        });
        Worker { child, addr: bound, data_dir: dir.to_path_buf() }
    }

    /// `kill -9`: no drain, no journal flush, no goodbye to the router.
    fn kill_dash_nine(&mut self) {
        self.child.kill().expect("SIGKILL the worker");
        self.child.wait().expect("reap the worker");
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn exchange(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.ends_with('\n'), "response line truncated: {response:?}");
    response.pop();
    response
}

fn field_u64(json: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\":");
    let rest = &json[json.find(&tag).unwrap_or_else(|| panic!("no {key} in {json}")) + tag.len()..];
    rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().unwrap()
}

const REGISTER_A2: &str = r#"{"op":"register_tensor","name":"A2","dims":[4,4],"coo":[[0,1,2.0],[1,0,2.0],[2,3,3.0],[3,2,3.0],[2,2,5.0]],"placement":"replicate"}"#;
const REGISTER_X2: &str = r#"{"op":"register_tensor","name":"x2","dims":[4],"dense":[1.0,2.0,3.0,4.0],"placement":"replicate"}"#;
const PREPARE_SHARDED: &str = r#"{"op":"prepare","einsum":"for i, j: y[i] += A2[i, j] * x2[j]","sym":["A2"],"threads":1,"sharded":true}"#;

#[test]
fn kill_nine_one_shard_contains_the_blast_and_rejoins() {
    let base = std::env::temp_dir().join(format!("systec-cluster-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    let mut workers: Vec<Worker> =
        (0..3).map(|k| Worker::spawn("127.0.0.1:0", &base.join(format!("shard-{k}")))).collect();
    let shard_addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let running =
        route("127.0.0.1:0", &shard_addrs, RouterConfig::default()).expect("start router");
    let mut conn = TcpStream::connect(running.addr()).unwrap();

    // Pick the victim by the ring: `doomed` names the shard we will
    // kill, `safe` names some survivor.
    let ring = HashRing::new(3);
    let victim = ring.shard_for("doomed");
    let safe = (0..1000)
        .map(|k| format!("safe{k}"))
        .find(|name| ring.shard_for(name) != victim)
        .expect("some name lands on a survivor");

    // Pre-crash traffic: replicated operands, a sharded kernel, a
    // hash-placed tensor on the victim, a single-shard kernel on a
    // survivor — and the byte oracles for both kernels.
    for line in [REGISTER_A2, REGISTER_X2] {
        let r = exchange(&mut conn, line);
        assert!(r.starts_with("{\"ok\":true"), "{r}");
    }
    let doomed_register =
        r#"{"op":"register_tensor","name":"doomed","dims":[2],"dense":[1.0,2.0]}"#.to_string();
    let r = exchange(&mut conn, &doomed_register);
    assert!(r.starts_with("{\"ok\":true"), "{r}");
    assert_eq!(field_u64(&r, "generation"), 0, "{r}");
    let safe_register = format!(
        r#"{{"op":"register_tensor","name":"{safe}","dims":[4],"dense":[1.0,2.0,3.0,4.0]}}"#
    );
    let r = exchange(&mut conn, &safe_register);
    assert!(r.starts_with("{\"ok\":true"), "{r}");

    let p = exchange(&mut conn, PREPARE_SHARDED);
    assert!(p.starts_with("{\"ok\":true"), "{p}");
    let sharded_kernel = field_u64(&p, "kernel");
    let sharded_run = format!(r#"{{"op":"run","kernel":{sharded_kernel}}}"#);
    let sharded_oracle = exchange(&mut conn, &sharded_run);
    assert!(sharded_oracle.starts_with("{\"ok\":true"), "{sharded_oracle}");

    let safe_prepare = format!(
        r#"{{"op":"prepare","einsum":"for i: c[i] += S[i] * S[i]","inputs":{{"S":"{safe}"}},"threads":1}}"#
    );
    let p = exchange(&mut conn, &safe_prepare);
    assert!(p.starts_with("{\"ok\":true"), "{p}");
    let safe_kernel = field_u64(&p, "kernel");
    let safe_run = format!(r#"{{"op":"run","kernel":{safe_kernel}}}"#);
    let safe_oracle = exchange(&mut conn, &safe_run);
    assert!(safe_oracle.starts_with("{\"ok\":true"), "{safe_oracle}");

    // A single-shard kernel living on the victim, for the stale-handle
    // check after the rejoin.
    let doomed_prepare = r#"{"op":"prepare","einsum":"for i: d[i] += D[i] * D[i]","inputs":{"D":"doomed"},"threads":1}"#;
    let p = exchange(&mut conn, doomed_prepare);
    assert!(p.starts_with("{\"ok\":true"), "{p}");
    let doomed_kernel = field_u64(&p, "kernel");
    let doomed_run = format!(r#"{{"op":"run","kernel":{doomed_kernel}}}"#);
    let doomed_oracle = exchange(&mut conn, &doomed_run);
    assert!(doomed_oracle.starts_with("{\"ok\":true"), "{doomed_oracle}");

    // Chaos: kill -9 the victim shard, mid-session.
    let victim_addr = workers[victim].addr.clone();
    let victim_dir = workers[victim].data_dir.clone();
    workers[victim].kill_dash_nine();

    // Requests owned by the dead shard answer retryable structured
    // errors — the client connection itself never drops.
    let r = exchange(&mut conn, &sharded_run);
    assert!(r.contains("\"code\":\"shard_unavailable\""), "{r}");
    let r = exchange(&mut conn, &doomed_register);
    assert!(r.contains("\"code\":\"shard_unavailable\""), "{r}");
    assert!(
        systec::serve::protocol::ErrorCode::ShardUnavailable.retryable(),
        "shard_unavailable must be advertised as retryable"
    );

    // Survivors keep serving byte-identically.
    for _ in 0..3 {
        assert_eq!(exchange(&mut conn, &safe_run), safe_oracle, "survivor diverged post-crash");
    }

    // Cluster stats see the hole.
    let stats = exchange(&mut conn, r#"{"op":"stats"}"#);
    assert!(stats.contains("\"reply\":\"cluster_stats\""), "{stats}");
    assert_eq!(stats.matches("\"healthy\":false").count(), 1, "{stats}");

    // Rejoin: same port, same --data-dir. The durable registry brings
    // the replicated operands and the victim's hash-placed tensor
    // back; the router reconnects on the next request that needs it.
    workers[victim] = Worker::spawn(&victim_addr, &victim_dir);
    assert_eq!(workers[victim].addr, victim_addr, "restart must rebind the old port");

    // Prepared kernels were process state on the victim, so the router
    // refuses the stale handle; re-preparing mints a live one and the
    // merged result is byte-identical to the pre-crash oracle.
    let deadline = Instant::now() + Duration::from_secs(10);
    let p = loop {
        let p = exchange(&mut conn, PREPARE_SHARDED);
        if p.starts_with("{\"ok\":true") || Instant::now() > deadline {
            break p;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(p.starts_with("{\"ok\":true"), "re-prepare after rejoin: {p}");
    let rejoined_kernel = field_u64(&p, "kernel");
    let rejoined_run = format!(r#"{{"op":"run","kernel":{rejoined_kernel}}}"#);
    assert_eq!(
        exchange(&mut conn, &rejoined_run),
        sharded_oracle,
        "post-rejoin sharded merge must be byte-identical to pre-crash"
    );

    // The victim's kernel handles died with its process: the router
    // refuses the pre-crash handle with a structured error instead of
    // letting the restarted worker misinterpret a recycled number.
    let r = exchange(&mut conn, &doomed_run);
    assert!(r.contains("\"code\":\"unknown_kernel\"") && r.contains("before it restarted"), "{r}");
    let p = exchange(&mut conn, doomed_prepare);
    assert!(p.starts_with("{\"ok\":true"), "{p}");
    let relive = field_u64(&p, "kernel");
    let r = exchange(&mut conn, &format!(r#"{{"op":"run","kernel":{relive}}}"#));
    assert_eq!(
        r, doomed_oracle,
        "recovered single-shard kernel must reproduce the pre-crash bytes"
    );

    // The victim's durable registry recovered: re-registering `doomed`
    // resumes its generation counter instead of restarting at zero.
    let r = exchange(&mut conn, &doomed_register);
    assert!(r.starts_with("{\"ok\":true"), "{r}");
    assert_eq!(field_u64(&r, "generation"), 1, "generation must survive kill -9: {r}");

    // The router counted the round trip: one reconnect, a healthy ring.
    let stats = exchange(&mut conn, r#"{"op":"stats"}"#);
    assert_eq!(stats.matches("\"healthy\":true").count(), 3, "{stats}");
    let metrics = exchange(&mut conn, r#"{"op":"metrics"}"#);
    assert!(metrics.contains("systec_router_reconnects_total 1"), "{metrics}");
    assert!(metrics.contains("systec_router_shard_unavailable_total"), "{metrics}");

    // Clean shutdown through the router reaches all three workers.
    let bye = exchange(&mut conn, r#"{"op":"shutdown"}"#);
    assert!(bye.contains("shutting_down"), "{bye}");
    running.wait();
    for mut worker in workers {
        let status = worker.child.wait().expect("reap worker");
        assert!(status.success(), "worker exited {status:?} after shutdown broadcast");
    }
    let _ = std::fs::remove_dir_all(&base);
}
