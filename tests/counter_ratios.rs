//! The paper's access/op-saving claims (§5.2), checked via the
//! executor's instrumentation counters.
//!
//! Reads are checked *exactly*: a symmetric kernel must touch precisely
//! the canonical-triangle entries of `A` (which approaches `1/n!` of the
//! tensor as diagonals become negligible — the paper's 1/2, 1/6, 1/24,
//! 1/120 figures). Flops are checked against the analytical cost of the
//! generated code (the scale-by-`n!` multiply itself costs one flop, so
//! e.g. 3-d MTTKRP's ideal op ratio is 2/3 of naive rather than the
//! asymptotic 1/2 the paper quotes for pure semiring work; the dominant
//! saving — iteration and memory traffic — is in the read counters).

use std::collections::HashMap;

use systec::exec::Counters;
use systec::kernels::{defs, KernelDef, Prepared};
use systec::tensor::generate::{random_dense, rng, sprand, symmetric_erdos_renyi};
use systec::tensor::{CooTensor, Tensor};

/// Runs both versions and returns (symmetric counters, naive counters).
fn counters(def: &KernelDef, inputs: &HashMap<String, Tensor>) -> (Counters, Counters) {
    let sym = Prepared::compile(def, inputs).unwrap();
    let naive = Prepared::naive(def, inputs).unwrap();
    // Timed region only: replication excluded on both sides, as in §5.2.
    let (_, cs) = sym.run_timed().unwrap();
    let (_, cn) = naive.run_timed().unwrap();
    (cs, cn)
}

/// The number of stored entries with nondecreasing coordinates — the
/// canonical triangle (Definition 2.3).
fn canonical_count(coo: &CooTensor) -> u64 {
    coo.entries().filter(|(c, _)| c.windows(2).all(|w| w[0] <= w[1])).count() as u64
}

fn assert_exact_reads(name: &str, sym_reads: u64, naive_reads: u64, canonical: u64, nnz: u64) {
    assert_eq!(naive_reads % nnz, 0, "{name}: naive reads must be a multiple of nnz");
    let per_entry = naive_reads / nnz;
    assert_eq!(
        sym_reads,
        canonical * per_entry,
        "{name}: symmetric kernel must read exactly the canonical entries \
         (canonical={canonical}, nnz={nnz}, per_entry={per_entry})"
    );
}

fn assert_flops_below(name: &str, sym: u64, naive: u64, bound: f64) {
    let ratio = sym as f64 / naive as f64;
    assert!(ratio <= bound, "{name}: flops ratio {ratio:.4} exceeds bound {bound}");
}

#[test]
fn ssymv_reads_exactly_canonical() {
    let def = defs::ssymv();
    let mut r = rng(1);
    let n = 60;
    let a = symmetric_erdos_renyi(n, 2, 0.1, &mut r);
    let x = random_dense(vec![n], &mut r);
    let canonical = canonical_count(&a);
    let nnz = a.nnz() as u64;
    let inputs = def.inputs([("A", a.into()), ("x", x.into())]).unwrap();
    let (cs, cn) = counters(&def, &inputs);
    assert_exact_reads("SSYMV", cs.reads_of_family("A"), cn.reads_of_family("A"), canonical, nnz);
    // Asymptotically 1/2: diagonals are the only entries not halved.
    let ratio = canonical as f64 / nnz as f64;
    assert!((0.5..0.56).contains(&ratio), "canonical fraction {ratio}");
    // All computations still happen (the symmetric kernel saves reads,
    // not flops, for SSYMV).
    assert!(cs.flops as f64 >= 0.9 * cn.flops as f64, "{} vs {}", cs.flops, cn.flops);
}

#[test]
fn bellman_ford_reads_exactly_canonical() {
    let def = defs::bellman_ford();
    let mut r = rng(9);
    let n = 50;
    let a = symmetric_erdos_renyi(n, 2, 0.1, &mut r);
    let d = random_dense(vec![n], &mut r);
    let canonical = canonical_count(&a);
    let nnz = a.nnz() as u64;
    let inputs = def.inputs([("A", a.into()), ("d", d.into())]).unwrap();
    let (cs, cn) = counters(&def, &inputs);
    assert_exact_reads(
        "Bellman-Ford",
        cs.reads_of_family("A"),
        cn.reads_of_family("A"),
        canonical,
        nnz,
    );
}

#[test]
fn syprd_reads_canonical_flops_reduced() {
    let def = defs::syprd();
    let mut r = rng(2);
    let n = 60;
    let a = symmetric_erdos_renyi(n, 2, 0.1, &mut r);
    let x = random_dense(vec![n], &mut r);
    let canonical = canonical_count(&a);
    let nnz = a.nnz() as u64;
    let inputs = def.inputs([("A", a.into()), ("x", x.into())]).unwrap();
    let (cs, cn) = counters(&def, &inputs);
    assert_exact_reads("SYPRD", cs.reads_of_family("A"), cn.reads_of_family("A"), canonical, nnz);
    // Naive: 3 flops/entry; symmetric off-diagonal: 4 flops per canonical
    // entry (the ×2 costs one multiply) => ideal ratio 2/3.
    assert_flops_below("SYPRD", cs.flops, cn.flops, 0.78);
}

#[test]
fn ssyrk_flops_and_writes_halved() {
    let def = defs::ssyrk();
    let mut r = rng(3);
    let n = 60;
    // Dense-ish rows so off-diagonal intersections dominate diagonal
    // self-intersections.
    let a = sprand(n, n, n * 12, &mut r);
    let inputs = def.inputs([("A", a.into())]).unwrap();
    let (cs, cn) = counters(&def, &inputs);
    let flops_ratio = cs.flops as f64 / cn.flops as f64;
    let writes_ratio = cs.writes as f64 / cn.writes as f64;
    // (offdiag/2 + diag) / (offdiag + diag): approaches 1/2 from above.
    assert!((0.45..0.65).contains(&flops_ratio), "SSYRK flops ratio {flops_ratio}");
    // The workspace transform additionally batches the symmetric
    // version's stores (one per canonical (i, j) pair rather than one per
    // k-match), so the write ratio drops well below the pure-symmetry 1/2.
    assert!((0.1..0.65).contains(&writes_ratio), "SSYRK writes ratio {writes_ratio}");
    // A is not symmetric, so every stored value is still touched (the
    // paper: "accesses all values of A") — but the per-iteration read
    // *count* halves along with the iteration space.
    let reads_ratio = cs.reads_of_family("A") as f64 / cn.reads_of_family("A") as f64;
    assert!((0.4..0.8).contains(&reads_ratio), "SSYRK reads ratio {reads_ratio}");
}

#[test]
fn ttm_reads_exactly_canonical() {
    let def = defs::ttm();
    let mut r = rng(4);
    let n = 20;
    let a = symmetric_erdos_renyi(n, 3, 0.03, &mut r);
    let b = random_dense(vec![n, 6], &mut r);
    let canonical = canonical_count(&a);
    let nnz = a.nnz() as u64;
    let inputs = def.inputs([("A", a.into()), ("B", b.into())]).unwrap();
    let (cs, cn) = counters(&def, &inputs);
    assert_exact_reads("TTM", cs.reads_of_family("A"), cn.reads_of_family("A"), canonical, nnz);
    // Visible {{j,l}} output symmetry halves compute and writes.
    assert_flops_below("TTM", cs.flops, cn.flops, 0.62);
    let writes_ratio = cs.writes as f64 / cn.writes as f64;
    assert!((0.4..0.62).contains(&writes_ratio), "TTM writes ratio {writes_ratio}");
}

#[test]
fn mttkrp3_reads_exactly_canonical() {
    let def = defs::mttkrp(3);
    let mut r = rng(5);
    let n = 20;
    let a = symmetric_erdos_renyi(n, 3, 0.03, &mut r);
    let b = random_dense(vec![n, 6], &mut r);
    let canonical = canonical_count(&a);
    let nnz = a.nnz() as u64;
    let inputs = def.inputs([("A", a.into()), ("B", b.into())]).unwrap();
    let (cs, cn) = counters(&def, &inputs);
    assert_exact_reads("MTTKRP3", cs.reads_of_family("A"), cn.reads_of_family("A"), canonical, nnz);
    // Ideal generated-code ratio: 12 flops per canonical entry vs 18
    // naive => 2/3; diagonals push it slightly up.
    assert_flops_below("MTTKRP3", cs.flops, cn.flops, 0.72);
    // Asymptotically canonical/nnz -> 1/6.
    let frac = canonical as f64 / nnz as f64;
    assert!(frac < 0.25, "canonical fraction {frac} should approach 1/6");
}

#[test]
fn mttkrp4_reads_exactly_canonical() {
    let def = defs::mttkrp(4);
    let mut r = rng(6);
    let n = 14;
    let a = symmetric_erdos_renyi(n, 4, 0.004, &mut r);
    let b = random_dense(vec![n, 4], &mut r);
    let canonical = canonical_count(&a);
    let nnz = a.nnz() as u64;
    let inputs = def.inputs([("A", a.into()), ("B", b.into())]).unwrap();
    let (cs, cn) = counters(&def, &inputs);
    assert_exact_reads("MTTKRP4", cs.reads_of_family("A"), cn.reads_of_family("A"), canonical, nnz);
    // Ideal: 24 flops per canonical vs 96 naive per 24 entries => 1/4.
    assert_flops_below("MTTKRP4", cs.flops, cn.flops, 0.30);
}

#[test]
fn mttkrp5_reads_exactly_canonical() {
    let def = defs::mttkrp(5);
    let mut r = rng(7);
    let n = 11;
    let a = symmetric_erdos_renyi(n, 5, 0.0008, &mut r);
    let b = random_dense(vec![n, 4], &mut r);
    let canonical = canonical_count(&a);
    let nnz = a.nnz() as u64;
    let inputs = def.inputs([("A", a.into()), ("B", b.into())]).unwrap();
    let (cs, cn) = counters(&def, &inputs);
    assert_exact_reads("MTTKRP5", cs.reads_of_family("A"), cn.reads_of_family("A"), canonical, nnz);
    assert_flops_below("MTTKRP5", cs.flops, cn.flops, 0.20);
}

#[test]
fn canonical_triangle_only_storage_suffices() {
    // Table 1's "optimizes redundant storage": because the symmetric
    // kernel only ever reads canonical coordinates, running it with a
    // tensor holding *only* the canonical triangle produces the same
    // output — a factor n! storage saving.
    let def = defs::ssymv();
    let mut r = rng(8);
    let n = 30;
    let full = symmetric_erdos_renyi(n, 2, 0.15, &mut r);
    let x = random_dense(vec![n], &mut r);
    // Canonical triangle only (i <= j).
    let mut upper = CooTensor::new(vec![n, n]);
    for (coords, v) in full.entries() {
        if coords[0] <= coords[1] {
            upper.push(coords, v);
        }
    }
    let inputs_full = def.inputs([("A", full.into()), ("x", x.clone().into())]).unwrap();
    let inputs_upper = def.inputs([("A", upper.into()), ("x", x.into())]).unwrap();
    let sym_full = Prepared::compile(&def, &inputs_full).unwrap();
    let sym_upper = Prepared::compile(&def, &inputs_upper).unwrap();
    let (a, _) = sym_full.run_full().unwrap();
    let (b, _) = sym_upper.run_full().unwrap();
    assert!(a["y"].max_abs_diff(&b["y"]).unwrap() < 1e-10);
}
