//! Every optimization pass, toggled individually, must preserve kernel
//! semantics — the ablation-correctness guarantee behind the ablation
//! benchmarks.

use std::collections::HashMap;

use systec::compiler::CompileOptions;
use systec::kernels::{defs, KernelDef, Prepared};
use systec::tensor::generate::{random_dense, rng, sprand, symmetric_erdos_renyi};
use systec::tensor::Tensor;

fn variants() -> Vec<(&'static str, CompileOptions)> {
    let all = CompileOptions::default();
    vec![
        ("full", all),
        ("no_visible_output", CompileOptions { visible_output: false, ..all }),
        ("no_distribute", CompileOptions { distribute: false, ..all }),
        ("with_lookup_tables", CompileOptions { lookup_tables: true, ..all }),
        ("no_consolidate", CompileOptions { consolidate: false, ..all }),
        ("no_cse", CompileOptions { cse: false, ..all }),
        ("no_diag_split", CompileOptions { diagonal_split: false, ..all }),
        ("no_group_branches", CompileOptions { group_branches: false, ..all }),
        ("no_workspace", CompileOptions { workspace: false, ..all }),
        ("no_licm", CompileOptions { licm: false, ..all }),
        ("no_concordize", CompileOptions { concordize: false, ..all }),
        ("no_output_detection", CompileOptions { output_symmetry_detection: false, ..all }),
        ("symmetrize_only", CompileOptions::none()),
    ]
}

fn check_variants(def: &KernelDef, inputs: &HashMap<String, Tensor>) {
    let naive = Prepared::naive(def, inputs).unwrap();
    let (expected, _) = naive.run_full().unwrap();
    for (name, options) in variants() {
        let prepared = Prepared::compile_with(def, inputs, options).unwrap();
        let (got, _) = prepared.run_full().unwrap();
        for (out_name, tensor) in &expected {
            let diff = tensor.max_abs_diff(&got[out_name]).unwrap();
            assert!(
                diff < 1e-9,
                "kernel {} variant {name}: output {out_name} differs by {diff}",
                def.name
            );
        }
    }
}

#[test]
fn ssymv_all_variants_agree() {
    let def = defs::ssymv();
    let mut r = rng(31);
    let a = symmetric_erdos_renyi(22, 2, 0.2, &mut r);
    let x = random_dense(vec![22], &mut r);
    let inputs = def.inputs([("A", a.into()), ("x", x.into())]).unwrap();
    check_variants(&def, &inputs);
}

#[test]
fn bellman_ford_all_variants_agree() {
    let def = defs::bellman_ford();
    let mut r = rng(32);
    let a = symmetric_erdos_renyi(18, 2, 0.25, &mut r);
    let d = random_dense(vec![18], &mut r);
    let inputs = def.inputs([("A", a.into()), ("d", d.into())]).unwrap();
    check_variants(&def, &inputs);
}

#[test]
fn syprd_all_variants_agree() {
    let def = defs::syprd();
    let mut r = rng(33);
    let a = symmetric_erdos_renyi(20, 2, 0.2, &mut r);
    let x = random_dense(vec![20], &mut r);
    let inputs = def.inputs([("A", a.into()), ("x", x.into())]).unwrap();
    check_variants(&def, &inputs);
}

#[test]
fn ssyrk_all_variants_agree() {
    let def = defs::ssyrk();
    let mut r = rng(34);
    let a = sprand(14, 14, 50, &mut r);
    let inputs = def.inputs([("A", a.into())]).unwrap();
    check_variants(&def, &inputs);
}

#[test]
fn ttm_all_variants_agree() {
    let def = defs::ttm();
    let mut r = rng(35);
    let a = symmetric_erdos_renyi(9, 3, 0.06, &mut r);
    let b = random_dense(vec![9, 3], &mut r);
    let inputs = def.inputs([("A", a.into()), ("B", b.into())]).unwrap();
    check_variants(&def, &inputs);
}

#[test]
fn mttkrp3_all_variants_agree() {
    let def = defs::mttkrp(3);
    let mut r = rng(36);
    let a = symmetric_erdos_renyi(10, 3, 0.05, &mut r);
    let b = random_dense(vec![10, 3], &mut r);
    let inputs = def.inputs([("A", a.into()), ("B", b.into())]).unwrap();
    check_variants(&def, &inputs);
}

#[test]
fn mttkrp4_all_variants_agree() {
    let def = defs::mttkrp(4);
    let mut r = rng(37);
    let a = symmetric_erdos_renyi(7, 4, 0.01, &mut r);
    let b = random_dense(vec![7, 3], &mut r);
    let inputs = def.inputs([("A", a.into()), ("B", b.into())]).unwrap();
    check_variants(&def, &inputs);
}
