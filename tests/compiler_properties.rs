//! Property-based tests of the compiler itself: on randomly generated
//! symmetric einsums with random partitions, the compiled kernel must
//! match the naive kernel and the brute-force reference.

use std::collections::HashMap;

use proptest::prelude::*;
use systec::compiler::{Compiler, SymmetryPartition, SymmetrySpec};
use systec::exec::reference::reference_einsum;
use systec::ir::build::*;
use systec::ir::{AssignOp, Einsum, Index};
use systec::kernels::Prepared;
use systec::tensor::generate::rng as seeded_rng;
use systec::tensor::{csf, CooTensor, DenseTensor, SparseTensor, Tensor};

/// Builds a random symmetric tensor respecting `partition` by symmetrizing
/// over the partition's permutations.
fn partially_symmetric(
    n: usize,
    partition: &SymmetryPartition,
    nnz: usize,
    seed: u64,
) -> CooTensor {
    use rand::Rng;
    let mut r = seeded_rng(seed);
    let rank = partition.rank();
    let mut coo = CooTensor::new(vec![n; rank]);
    for _ in 0..nnz {
        let coords: Vec<usize> = (0..rank).map(|_| r.gen_range(0..n)).collect();
        let v = r.gen_range(0.1..1.0);
        for perm in partition.permutations() {
            let permuted: Vec<usize> = perm.iter().map(|&p| coords[p]).collect();
            coo.set(&permuted, v);
        }
    }
    coo
}

/// The family of einsums we fuzz: `Out[out_idx…] += A[a_idx…] * Π dense`.
#[derive(Debug, Clone)]
struct RandomKernel {
    order: usize,
    partition_choice: usize,
    with_vector: bool,
    scalar_output: bool,
    n: usize,
    nnz: usize,
    seed: u64,
}

fn kernel_strategy() -> impl Strategy<Value = RandomKernel> {
    (2usize..=4, 0usize..3, any::<bool>(), any::<bool>(), 4usize..9, 2usize..12, 0u64..1000)
        .prop_map(|(order, partition_choice, with_vector, scalar_output, n, nnz, seed)| {
            RandomKernel { order, partition_choice, with_vector, scalar_output, n, nnz, seed }
        })
}

fn partition_for(order: usize, choice: usize) -> SymmetryPartition {
    match (order, choice % 3) {
        (_, 0) => SymmetryPartition::full(order),
        (2, _) => SymmetryPartition::full(2),
        (o, 1) => SymmetryPartition::from_parts(
            std::iter::once((0..o - 1).collect::<Vec<_>>())
                .chain(std::iter::once(vec![o - 1]))
                .collect(),
        )
        .expect("valid partition"),
        (o, _) => SymmetryPartition::from_parts(
            std::iter::once(vec![0]).chain(std::iter::once((1..o).collect::<Vec<_>>())).collect(),
        )
        .expect("valid partition"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_matches_naive_and_reference(k in kernel_strategy()) {
        let partition = partition_for(k.order, k.partition_choice);
        let idx_names = ["i0", "i1", "i2", "i3"];
        let a_indices: Vec<Index> = (0..k.order).map(|m| idx(idx_names[m])).collect();

        // Output uses the first index (or none for a scalar output).
        let output = if k.scalar_output {
            access("Out", [] as [&str; 0])
        } else {
            access("Out", [idx_names[0]])
        };
        let mut factors = vec![systec::ir::Expr::Access(systec::ir::Access {
            tensor: systec::ir::TensorRef::base("A"),
            indices: a_indices.clone(),
        })];
        if k.with_vector {
            factors.push(access("v", [idx_names[k.order - 1]]).into());
        }
        let einsum = Einsum::new(
            output,
            AssignOp::Add,
            systec::ir::Expr::call(systec::ir::BinOp::Mul, factors),
            a_indices.clone(),
        );
        let spec = SymmetrySpec::new().with_partition("A", partition.clone());

        // Data.
        let coo = partially_symmetric(k.n, &partition, k.nnz, k.seed);
        let mut inputs: HashMap<String, Tensor> = HashMap::new();
        inputs.insert(
            "A".to_string(),
            Tensor::Sparse(SparseTensor::from_coo(&coo, &csf(k.order)).unwrap()),
        );
        if k.with_vector {
            let mut r = seeded_rng(k.seed + 1);
            inputs.insert(
                "v".to_string(),
                Tensor::Dense(systec::tensor::generate::random_dense(vec![k.n], &mut r)),
            );
        }

        // Compile + run all three.
        let compiled = Compiler::new().compile(&einsum, &spec).expect("compiles");
        let sym = Prepared::from_programs(compiled.main, compiled.replication, &inputs).unwrap();
        let naive_prog = Compiler::new().naive(&einsum);
        let naive = Prepared::from_programs(naive_prog, None, &inputs).unwrap();
        let (out_sym, _) = sym.run_full().unwrap();
        let (out_naive, _) = naive.run_full().unwrap();
        let reference = reference_einsum(&einsum, &inputs).unwrap();

        let diff_naive = out_sym["Out"].max_abs_diff(&out_naive["Out"]).unwrap();
        prop_assert!(diff_naive < 1e-9, "symmetric vs naive differs by {diff_naive}");
        let diff_ref: f64 = out_sym["Out"].max_abs_diff(&reference).unwrap();
        prop_assert!(diff_ref < 1e-9, "symmetric vs reference differs by {diff_ref}");
    }

    #[test]
    fn compiled_reads_at_most_naive(k in kernel_strategy()) {
        // Whatever the kernel, the symmetric version must never read more
        // of A than the naive one.
        let partition = partition_for(k.order, k.partition_choice);
        if !partition.is_nontrivial() {
            return Ok(());
        }
        let idx_names = ["i0", "i1", "i2", "i3"];
        let a_indices: Vec<Index> = (0..k.order).map(|m| idx(idx_names[m])).collect();
        let einsum = Einsum::new(
            access("Out", [idx_names[0]]),
            AssignOp::Add,
            systec::ir::Expr::Access(systec::ir::Access {
                tensor: systec::ir::TensorRef::base("A"),
                indices: a_indices.clone(),
            }),
            a_indices,
        );
        let spec = SymmetrySpec::new().with_partition("A", partition.clone());
        let coo = partially_symmetric(k.n, &partition, k.nnz, k.seed);
        let mut inputs: HashMap<String, Tensor> = HashMap::new();
        inputs.insert(
            "A".to_string(),
            Tensor::Sparse(SparseTensor::from_coo(&coo, &csf(k.order)).unwrap()),
        );
        let compiled = Compiler::new().compile(&einsum, &spec).expect("compiles");
        let sym = Prepared::from_programs(compiled.main, compiled.replication, &inputs).unwrap();
        let naive = Prepared::from_programs(Compiler::new().naive(&einsum), None, &inputs).unwrap();
        let (_, cs) = sym.run_timed().unwrap();
        let (_, cn) = naive.run_timed().unwrap();
        prop_assert!(
            cs.reads_of_family("A") <= cn.reads_of_family("A"),
            "symmetric reads {} > naive reads {}",
            cs.reads_of_family("A"),
            cn.reads_of_family("A")
        );
    }
}

#[test]
fn dense_reference_sanity() {
    // Guard against the proptest harness silently testing nothing: one
    // deterministic instance checked against hand math.
    let einsum = Einsum::new(
        access("Out", ["i0"]),
        AssignOp::Add,
        access("A", ["i0", "i1"]).into(),
        [idx("i0"), idx("i1")],
    );
    let mut coo = CooTensor::new(vec![3, 3]);
    coo.set(&[0, 1], 2.0);
    coo.set(&[1, 0], 2.0);
    coo.set(&[1, 1], 5.0);
    let mut inputs = HashMap::new();
    inputs.insert("A".to_string(), Tensor::Sparse(SparseTensor::from_coo(&coo, &csf(2)).unwrap()));
    let spec = SymmetrySpec::new().with_full("A", 2);
    let compiled = Compiler::new().compile(&einsum, &spec).unwrap();
    let sym = Prepared::from_programs(compiled.main, compiled.replication, &inputs).unwrap();
    let (out, _) = sym.run_full().unwrap();
    let expected = DenseTensor::from_vec(vec![3], vec![2.0, 7.0, 0.0]).unwrap();
    assert!(out["Out"].max_abs_diff(&expected).unwrap() < 1e-12);
}
