//! Cluster differential tier: a `systec-router` fronting three real
//! `systec serve` worker processes over loopback, fed the same request
//! stream as one single-process worker — and every response compared
//! **byte-for-byte**.
//!
//! The stream exercises every routing mode:
//!
//! * hash-placed registrations (forwarded to one owning shard) and
//!   `{tag}` co-located pairs;
//! * `"placement":"replicate"` broadcasts;
//! * plain prepares (single-shard, handle rewritten into router space)
//!   and `"sharded":true` prepares (broadcast, merge schedule);
//! * sharded runs merged across shards — a reduction-merged symmetric
//!   kernel *and* a row-merged plain kernel — with outputs **and work
//!   counters** exactly matching the single process (the fold
//!   identities and integer counters make the merge exact, not
//!   approximate);
//! * dedup parity: re-preparing a sharded spec without `"sharded"`
//!   returns the same handle on both sides;
//! * error parity: unknown handles and garbage lines produce identical
//!   error bytes, which requires the router's handle space to advance
//!   in lockstep with the single process.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use systec::router::{route, RouterConfig};

/// The request stream both the cluster and the single-process oracle
/// serve. Values are dyadic (integers and halves), so every partial
/// sum a shard produces — and the fixed-order fold that merges them —
/// is exact in `f64`, which is what lets the byte-identity assertion
/// cover merged floating-point outputs and not just counters.
const SCRIPT: &[&str] = &[
    // A hash-placed symmetric matrix and a replicated vector.
    r#"{"op":"register_tensor","name":"A","dims":[4,4],"coo":[[0,1,2.0],[1,0,2.0],[2,3,1.5],[3,2,1.5],[1,1,0.5]]}"#,
    r#"{"op":"register_tensor","name":"x","dims":[4],"dense":[1.0,2.0,3.0,4.0],"placement":"replicate"}"#,
    // Re-register A: the generation bumps identically on both sides.
    r#"{"op":"register_tensor","name":"A","dims":[4,4],"coo":[[0,1,2.0],[1,0,2.0],[2,3,1.5],[3,2,1.5],[1,1,0.5]]}"#,
    // A hash-tag co-located pair: both names route by `job`.
    r#"{"op":"register_tensor","name":"{job}B","dims":[4,4],"dense":[1.0,0.0,2.0,0.0,0.0,3.0,0.0,4.0,5.0,0.0,6.0,0.0,0.0,7.0,0.0,8.0]}"#,
    r#"{"op":"register_tensor","name":"{job}v","dims":[4],"dense":[1.0,1.0,2.0,3.0]}"#,
    // Kernel 0: symmetric matvec over the hash-placed A.
    r#"{"op":"prepare","einsum":"for i, j: y[i] += A[i, j] * x[j]","sym":["A"],"threads":1}"#,
    r#"{"op":"run","kernel":0}"#,
    r#"{"op":"run","kernel":0}"#,
    // Kernel 1: input bindings remap through the hash tag.
    r#"{"op":"prepare","einsum":"for i, j: w[i] += B[i, j] * v[j]","inputs":{"B":"{job}B","v":"{job}v"},"threads":1}"#,
    r#"{"op":"run","kernel":1}"#,
    // Replicated operands for the sharded kernels below.
    r#"{"op":"register_tensor","name":"A2","dims":[4,4],"coo":[[0,1,2.0],[1,0,2.0],[2,3,3.0],[3,2,3.0],[2,2,5.0]],"placement":"replicate"}"#,
    r#"{"op":"register_tensor","name":"x2","dims":[4],"dense":[1.0,2.0,3.0,4.0],"placement":"replicate"}"#,
    // Kernel 2: sharded symmetric matvec — y reduction-merges (add).
    r#"{"op":"prepare","einsum":"for i, j: y[i] += A2[i, j] * x2[j]","sym":["A2"],"threads":1,"sharded":true}"#,
    r#"{"op":"run","kernel":2}"#,
    r#"{"op":"run","kernel":2,"full":true}"#,
    // Kernel 3: sharded plain matvec — y row-window-merges.
    r#"{"op":"prepare","einsum":"for i, j: y[i] += A2[i, j] * x2[j]","threads":1,"sharded":true}"#,
    r#"{"op":"run","kernel":3}"#,
    // The sharded spec re-prepared plain: dedups to kernel 2 on both
    // sides (the dedup key ignores `sharded` everywhere).
    r#"{"op":"prepare","einsum":"for i, j: y[i] += A2[i, j] * x2[j]","sym":["A2"],"threads":1}"#,
    // Error parity: the handle spaces advanced in lockstep, so even
    // the "have N" count in the message matches.
    r#"{"op":"run","kernel":99}"#,
    r#"this is not json"#,
    // Replicated unregister broadcasts; ghost unregister is idempotent.
    r#"{"op":"unregister","name":"x"}"#,
    r#"{"op":"unregister","name":"ghost"}"#,
    r#"{"op":"ping"}"#,
];

struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn() -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_systec"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn systec serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut banner = String::new();
        reader.read_line(&mut banner).expect("readable banner");
        let addr =
            banner.trim().rsplit(' ').next().expect("banner ends with the address").to_string();
        assert!(addr.contains(':'), "unexpected banner: {banner}");
        // Keep draining stdout so the worker's shutdown message never
        // hits a closed pipe (println! panics on EPIPE).
        std::thread::spawn(move || {
            let _ = std::io::copy(&mut reader, &mut std::io::sink());
        });
        Worker { child, addr }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn connect(addr: &str) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("cannot connect to {addr}: {e}"),
        }
    }
}

fn exchange(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.ends_with('\n'), "response line truncated: {response:?}");
    response.pop();
    response
}

#[test]
fn a_three_shard_cluster_is_byte_identical_to_one_process() {
    let workers: Vec<Worker> = (0..3).map(|_| Worker::spawn()).collect();
    let shard_addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let running =
        route("127.0.0.1:0", &shard_addrs, RouterConfig::default()).expect("start router");
    let oracle = Worker::spawn();

    let mut cluster_conn = connect(&running.addr().to_string());
    let mut oracle_conn = connect(&oracle.addr);
    for (step, line) in SCRIPT.iter().enumerate() {
        let from_cluster = exchange(&mut cluster_conn, line);
        let from_oracle = exchange(&mut oracle_conn, line);
        assert_eq!(
            from_cluster, from_oracle,
            "step {step} diverged\nrequest: {line}\ncluster: {from_cluster}\noracle:  {from_oracle}"
        );
    }

    // The merged sharded run really was a run reply, not a pair of
    // matching errors: re-run kernel 2 and check the merged values.
    let ran = exchange(&mut cluster_conn, r#"{"op":"run","kernel":2}"#);
    // A2 is symmetric with (0,1)=2, (2,3)=3, (2,2)=5; x2 = 1..4:
    // y = [2*2, 2*1, 5*3+3*4, 3*3] = [4, 2, 27, 9].
    assert!(ran.contains("[4,2,27,9]"), "merged sharded run values: {ran}");

    // Cross-shard plain prepares fail structurally at the router (a
    // single process would accept them, so this sits outside the
    // differential stream): find two names the ring scatters.
    let ring = systec::router::HashRing::new(3);
    let a = "scatter-a".to_string();
    let b = (0..1000)
        .map(|k| format!("scatter-b{k}"))
        .find(|name| ring.shard_for(name) != ring.shard_for(&a))
        .expect("some name lands on another shard");
    for name in [&a, &b] {
        let line =
            format!(r#"{{"op":"register_tensor","name":"{name}","dims":[2],"dense":[1.0,2.0]}}"#);
        let r = exchange(&mut cluster_conn, &line);
        assert!(r.starts_with("{\"ok\":true"), "{r}");
    }
    let line = format!(
        r#"{{"op":"prepare","einsum":"for i, j: y[i] += M[i, j] * u[j]","inputs":{{"M":"{a}","u":"{b}"}},"threads":1}}"#
    );
    let r = exchange(&mut cluster_conn, &line);
    assert!(r.contains("\"code\":\"invalid_kernel\"") && r.contains("co-locate"), "{r}");

    // Cluster-wide introspection (router-specific, so not part of the
    // differential stream): stats sees three healthy shards with the
    // ring fully occupied, metrics exposes the router families.
    let stats = exchange(&mut cluster_conn, r#"{"op":"stats"}"#);
    assert!(stats.contains("\"reply\":\"cluster_stats\""), "{stats}");
    assert_eq!(stats.matches("\"healthy\":true").count(), 3, "{stats}");
    assert_eq!(stats.matches("\"vnodes\":64").count(), 3, "{stats}");
    let metrics = exchange(&mut cluster_conn, r#"{"op":"metrics"}"#);
    for family in [
        "systec_router_forwarded_total",
        "systec_router_fanouts_total",
        "systec_router_broadcasts_total",
        "systec_router_merges_total",
        "systec_router_merge_us_bucket",
        "systec_router_shards_healthy 3",
    ] {
        assert!(metrics.contains(family), "missing {family} in {metrics}");
    }

    // Shutdown through the router reaches every worker.
    let bye = exchange(&mut cluster_conn, r#"{"op":"shutdown"}"#);
    assert!(bye.contains("shutting_down"), "{bye}");
    running.wait();
    for mut worker in workers {
        let status = worker.child.wait().expect("reap worker");
        assert!(status.success(), "worker exited {status:?} after shutdown broadcast");
    }
    let bye = exchange(&mut oracle_conn, r#"{"op":"shutdown"}"#);
    assert!(bye.contains("shutting_down"), "{bye}");
}
