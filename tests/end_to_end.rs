//! End-to-end correctness: for every kernel in the paper's evaluation,
//! the SySTeC-compiled program, the naive program, and the brute-force
//! reference must agree on random inputs; the native baselines must
//! agree as well.

use std::collections::HashMap;

use systec::exec::reference::reference_einsum;
use systec::kernels::{defs, native, KernelDef, Prepared};
use systec::tensor::generate::{random_dense, rng, sprand, symmetric_erdos_renyi};
use systec::tensor::{DenseTensor, Tensor};

const TOL: f64 = 1e-9;

fn check_all_outputs(a: &HashMap<String, DenseTensor>, b: &HashMap<String, DenseTensor>) {
    assert_eq!(a.len(), b.len(), "output sets differ");
    for (name, t) in a {
        let diff = t.max_abs_diff(&b[name]).unwrap();
        assert!(diff < TOL, "output {name} differs by {diff}");
    }
}

fn check_kernel(def: &KernelDef, inputs: &HashMap<String, Tensor>) {
    let sym = Prepared::compile(def, inputs).unwrap();
    let naive = Prepared::naive(def, inputs).unwrap();
    let (out_sym, _) = sym.run_full().unwrap();
    let (out_naive, _) = naive.run_full().unwrap();
    check_all_outputs(&out_sym, &out_naive);
    let reference = reference_einsum(&def.einsum, inputs).unwrap();
    let out_name = def.einsum.output.tensor.display_name();
    let diff = out_sym[&out_name].max_abs_diff(&reference).unwrap();
    assert!(diff < TOL, "kernel {} differs from reference by {diff}", def.name);
}

#[test]
fn ssymv_end_to_end() {
    for seed in 0..5 {
        let def = defs::ssymv();
        let mut r = rng(seed);
        let n = 16 + 7 * seed as usize;
        let a = symmetric_erdos_renyi(n, 2, 0.15, &mut r);
        let x = random_dense(vec![n], &mut r);
        let inputs = def.inputs([("A", a.into()), ("x", x.into())]).unwrap();
        check_kernel(&def, &inputs);
        // Native baselines agree too.
        let a_sp = inputs["A"].as_sparse().unwrap();
        let x_d = inputs["x"].as_dense().unwrap();
        let mkl_like = native::symmetric_csr_spmv(a_sp, x_d);
        let taco_like = native::csr_spmv(a_sp, x_d);
        let reference = reference_einsum(&def.einsum, &inputs).unwrap();
        assert!(mkl_like.max_abs_diff(&reference).unwrap() < TOL);
        assert!(taco_like.max_abs_diff(&reference).unwrap() < TOL);
    }
}

#[test]
fn bellman_ford_end_to_end() {
    for seed in 0..5 {
        let def = defs::bellman_ford();
        let mut r = rng(100 + seed);
        let n = 14 + 5 * seed as usize;
        let a = symmetric_erdos_renyi(n, 2, 0.2, &mut r);
        let d = random_dense(vec![n], &mut r);
        let inputs = def.inputs([("A", a.into()), ("d", d.clone().into())]).unwrap();
        let mut sym = Prepared::compile(&def, &inputs).unwrap();
        let mut naive = Prepared::naive(&def, &inputs).unwrap();
        sym.init_output("y", d.clone());
        naive.init_output("y", d.clone());
        let (out_sym, _) = sym.run_full().unwrap();
        let (out_naive, _) = naive.run_full().unwrap();
        check_all_outputs(&out_sym, &out_naive);
        let native_y = native::csr_bellman_ford(inputs["A"].as_sparse().unwrap(), &d, &d);
        assert!(out_sym["y"].max_abs_diff(&native_y).unwrap() < TOL);
    }
}

#[test]
fn syprd_end_to_end() {
    for seed in 0..5 {
        let def = defs::syprd();
        let mut r = rng(200 + seed);
        let n = 12 + 6 * seed as usize;
        let a = symmetric_erdos_renyi(n, 2, 0.25, &mut r);
        let x = random_dense(vec![n], &mut r);
        let inputs = def.inputs([("A", a.into()), ("x", x.into())]).unwrap();
        check_kernel(&def, &inputs);
        let native_s =
            native::csr_syprd(inputs["A"].as_sparse().unwrap(), inputs["x"].as_dense().unwrap());
        let (out, _) = Prepared::compile(&def, &inputs).unwrap().run_full().unwrap();
        assert!((out["y"].get(&[]) - native_s).abs() < TOL);
    }
}

#[test]
fn ssyrk_end_to_end() {
    for seed in 0..5 {
        let def = defs::ssyrk();
        let mut r = rng(300 + seed);
        let n = 10 + 4 * seed as usize;
        let a = sprand(n, n, n * 3, &mut r);
        let inputs = def.inputs([("A", a.into())]).unwrap();
        check_kernel(&def, &inputs);
        let native_c = native::csr_ssyrk(inputs["A"].as_sparse().unwrap());
        let (out, _) = Prepared::compile(&def, &inputs).unwrap().run_full().unwrap();
        assert!(out["C"].max_abs_diff(&native_c).unwrap() < TOL);
    }
}

#[test]
fn ttm_end_to_end() {
    for seed in 0..4 {
        let def = defs::ttm();
        let mut r = rng(400 + seed);
        let n = 7 + 2 * seed as usize;
        let a = symmetric_erdos_renyi(n, 3, 0.08, &mut r);
        let b = random_dense(vec![n, 4], &mut r);
        let inputs = def.inputs([("A", a.into()), ("B", b.into())]).unwrap();
        check_kernel(&def, &inputs);
    }
}

#[test]
fn ttm_partial_symmetry_end_to_end() {
    for seed in 0..3 {
        let def = defs::ttm_partial();
        let mut r = rng(450 + seed);
        let n = 7 + 2 * seed as usize;
        // Only {{1,2}} symmetry is declared, but a fully symmetric tensor
        // satisfies it, and we also build a genuinely partially symmetric
        // one: T[k][j][l] = T[k][l][j].
        let mut coo = systec::tensor::CooTensor::new(vec![n, n, n]);
        use rand::Rng;
        for _ in 0..(n * n) {
            let (k, j, l) = (r.gen_range(0..n), r.gen_range(0..n), r.gen_range(0..n));
            let v = r.gen_range(0.1..1.0);
            coo.set(&[k, j, l], v);
            coo.set(&[k, l, j], v);
        }
        let b = random_dense(vec![n, 3], &mut r);
        let inputs = def.inputs([("A", coo.into()), ("B", b.into())]).unwrap();
        check_kernel(&def, &inputs);
    }
}

#[test]
fn mttkrp3_end_to_end() {
    for seed in 0..4 {
        let def = defs::mttkrp(3);
        let mut r = rng(500 + seed);
        let n = 8 + 2 * seed as usize;
        let a = symmetric_erdos_renyi(n, 3, 0.05, &mut r);
        let b = random_dense(vec![n, 4], &mut r);
        let inputs = def.inputs([("A", a.into()), ("B", b.into())]).unwrap();
        check_kernel(&def, &inputs);
        let native_c =
            native::csf_mttkrp3(inputs["A"].as_sparse().unwrap(), inputs["B"].as_dense().unwrap());
        let (out, _) = Prepared::compile(&def, &inputs).unwrap().run_full().unwrap();
        assert!(out["C"].max_abs_diff(&native_c).unwrap() < TOL);
    }
}

#[test]
fn mttkrp4_end_to_end() {
    for seed in 0..3 {
        let def = defs::mttkrp(4);
        let mut r = rng(600 + seed);
        let n = 6 + seed as usize;
        let a = symmetric_erdos_renyi(n, 4, 0.02, &mut r);
        let b = random_dense(vec![n, 3], &mut r);
        let inputs = def.inputs([("A", a.into()), ("B", b.into())]).unwrap();
        check_kernel(&def, &inputs);
    }
}

#[test]
fn mttkrp5_end_to_end() {
    for seed in 0..2 {
        let def = defs::mttkrp(5);
        let mut r = rng(700 + seed);
        let n = 5 + seed as usize;
        let a = symmetric_erdos_renyi(n, 5, 0.008, &mut r);
        let b = random_dense(vec![n, 3], &mut r);
        let inputs = def.inputs([("A", a.into()), ("B", b.into())]).unwrap();
        check_kernel(&def, &inputs);
    }
}

#[test]
fn dense_inputs_also_work() {
    // The compiler is format-agnostic: the same kernels run with dense A.
    let def = KernelDef {
        formats: HashMap::from([
            ("A".to_string(), defs::InputFormat::Dense),
            ("x".to_string(), defs::InputFormat::Dense),
        ]),
        ..defs::ssymv()
    };
    let mut r = rng(800);
    let a = systec::tensor::generate::random_symmetric_dense(12, &mut r);
    let x = random_dense(vec![12], &mut r);
    let inputs = def.inputs([("A", a.into()), ("x", x.into())]).unwrap();
    check_kernel(&def, &inputs);
}
