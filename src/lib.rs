//! # systec
//!
//! Umbrella crate for the Rust reproduction of *SySTeC: A Symmetric
//! Sparse Tensor Compiler* (CGO 2025): re-exports every component crate
//! under one roof.
//!
//! * [`ir`] — the loop-nest tensor IR and einsum frontend
//!   ([`ir::parse_einsum`]).
//! * [`rewrite`] — term-rewriting combinators.
//! * [`tensor`] — fibertree sparse/structured tensor formats and
//!   generators.
//! * [`compiler`] — the SySTeC compiler (symmetrization + §4.2 passes).
//! * [`exec`] — the executing backend with sparse iteration semantics
//!   and instrumentation.
//! * [`codegen`] — the compiled backend: bytecode VM and the LRU plan
//!   cache.
//! * [`kernels`] — the paper's evaluation kernels, native baselines, and
//!   the prepare/run harness.
//! * [`serve`] — the long-lived einsum server: line-delimited JSON over
//!   TCP, pooled execution state, single-flight plan builds.
//! * [`router`] — the sharded-serving front: consistent-hash routing
//!   across `systec-serve` workers, row-range fan-out, deterministic
//!   reduction merges.
//!
//! ## Example
//!
//! ```
//! use systec::compiler::{Compiler, SymmetrySpec};
//! use systec::ir::parse_einsum;
//!
//! let einsum = parse_einsum("for i, j: y[i] += A[i, j] * x[j]")?;
//! let kernel = Compiler::new()
//!     .compile(&einsum, &SymmetrySpec::new().with_full("A", 2))
//!     .expect("ssymv compiles");
//! assert!(kernel.program.to_string().contains("if i <= j"));
//! # Ok::<(), systec::ir::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use systec_codegen as codegen;
pub use systec_core as compiler;
pub use systec_exec as exec;
pub use systec_ir as ir;
pub use systec_kernels as kernels;
pub use systec_rewrite as rewrite;
pub use systec_router as router;
pub use systec_serve as serve;
pub use systec_tensor as tensor;
