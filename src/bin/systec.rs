//! The `systec` command-line driver — the analogue of the artifact's
//! `run_SySTeC.jl`: feed it an einsum and symmetry declarations, inspect
//! the generated kernel, and optionally run it on random data against the
//! naive baseline. The `serve` and `client` subcommands expose the
//! long-lived einsum server (`systec-serve`).
//!
//! ```sh
//! systec "for i, j: y[i] += A[i, j] * x[j]" --sym A
//! systec "for i, k, l, j: C[i, j] += A[i, k, l] * B[k, j] * B[l, j]" \
//!        --sym A --run --n 30 --density 1e-2 --rank 8
//! systec "for i, j, k: C[i, j] += A[i, k] * A[j, k]" --run   # SSYRK, output symmetry
//! systec "for i, j: y[i] += A[i, j] * x[j]" --sym A:0-1      # explicit partition
//! systec serve --addr 127.0.0.1:7171 --threads 2             # einsum server
//! systec client --addr 127.0.0.1:7171 '{"op":"ping"}'        # scripted exchange
//! systec cluster --shards 3 --listen 127.0.0.1:7070          # sharded cluster
//! ```

use std::collections::HashMap;
use std::io::BufRead;
use std::process::ExitCode;

use systec::compiler::{Compiler, SymmetrySpec};
use systec::exec::reference::reference_einsum;
use systec::ir::{parse_einsum, Einsum};
use systec::kernels::{parse_symmetry, serial_fallback_note, Backend, Parallelism, Prepared};
use systec::serve::protocol::{Request, Response};
use systec::serve::{serve_with, Client, Engine, RetryPolicy, ServerConfig};
use systec::tensor::generate::{random_dense, rng};
use systec::tensor::{csf, CooTensor, SparseTensor, Tensor};

struct Options {
    einsum: String,
    symmetric: Vec<String>,
    run: bool,
    n: usize,
    density: f64,
    rank: usize,
    seed: u64,
    backend: Backend,
    threads: usize,
}

fn usage() -> &'static str {
    "usage: systec \"for <order>: <out>[..] <op> <expr>\" [options]\n\
     \n\
     options:\n\
       --sym NAME            declare NAME fully symmetric\n\
       --sym NAME:0-1,2      declare a partial symmetry partition (parts of mode\n\
                             positions, `-` within a part, `,` between parts)\n\
       --run                 execute on random data and compare with the naive kernel\n\
       --backend B           execution backend for --run: `compiled` (bytecode VM,\n\
                             the default) or `interpreter` (tree walker)\n\
       --threads T           worker threads for --run on the compiled backend\n\
                             (default 1 = serial; 0 = all cores). Plans the\n\
                             compiler cannot prove row-splittable SILENTLY run\n\
                             serially regardless of T; the run prints a one-line\n\
                             note when that happens\n\
       --n N                 dimension extent for --run (default 30)\n\
       --density P           sparse fill probability for --run (default 0.01)\n\
       --rank R              extent of indices that only appear densely (default 8)\n\
       --seed S              RNG seed (default 42)\n\
     \n\
     subcommands:\n\
       systec serve --addr HOST:PORT [--threads T] [--max-conns N]\n\
                    [--max-bytes B] [--deadline-ms D] [--batch K] [--executors E]\n\
                    [--data-dir PATH]\n\
                             run the long-lived einsum server (line-delimited JSON\n\
                             over TCP; see the README's Serving section). --threads\n\
                             sets the default per-run parallelism for splittable\n\
                             plans. --max-conns caps concurrent connections and\n\
                             --max-bytes caps registered tensor bytes (over-cap\n\
                             requests get structured admission_rejected errors);\n\
                             --deadline-ms bounds how long a queued request may\n\
                             wait before a deadline_exceeded error. --batch caps\n\
                             how many identical queued runs coalesce into one\n\
                             dispatch (default 32); --executors sets scheduler\n\
                             threads (default 2). --data-dir makes the tensor\n\
                             registry durable: mutations are journaled write-ahead\n\
                             under PATH and recovered on restart (generations\n\
                             included). Runs until a client sends\n\
                             {\"op\":\"shutdown\"}, then drains in-flight work and\n\
                             flushes the journal before exiting\n\
       systec client --addr HOST:PORT [--retry N] [REQUEST...]\n\
                             send request lines (or stdin, one request per line)\n\
                             and print each response; exits non-zero if any\n\
                             response reports ok:false. --retry N retries connect\n\
                             failures, dropped connections, and retryable error\n\
                             codes (deadline_exceeded, admission_rejected,\n\
                             internal_error) up to N times with exponential\n\
                             backoff; note a retried mutation (register) is\n\
                             re-applied, bumping the generation again\n\
       systec top --addr HOST:PORT [--interval-ms N] [--iters K]\n\
                             poll a server's stats and render a per-kernel latency\n\
                             table (runs, p50/p90/p99/max, slow runs) plus cache\n\
                             and worker-pool counters, every N ms (default 1000).\n\
                             --iters K stops after K refreshes (0 = forever)\n\
       systec route --listen HOST:PORT --shard HOST:PORT [--shard HOST:PORT ...]\n\
                    [--vnodes N] [--retry N]\n\
                             front a cluster of running systec-serve workers: one\n\
                             endpoint speaking the worker protocol, consistent-hash\n\
                             routing by tensor name ({tag} hash tags co-locate),\n\
                             \"placement\":\"replicate\" broadcasts, \"sharded\":true\n\
                             prepares fan runs out as row ranges and merge them\n\
                             deterministically (see the README's Sharded serving\n\
                             section). --vnodes sets virtual nodes per shard\n\
                             (default 64); --retry N retries the initial shard\n\
                             connects\n\
       systec cluster --shards N [--listen HOST:PORT] [--threads T]\n\
                      [--data-dir PATH] [--vnodes V]\n\
                             spawn N systec-serve workers on loopback ports plus a\n\
                             router fronting them, and supervise: a worker that\n\
                             dies is respawned on its old port (with its old\n\
                             --data-dir PATH/shard-K, so the durable registry\n\
                             recovers) until a client sends {\"op\":\"shutdown\"}\n"
}

fn serve_main(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut threads = 1usize;
    let mut max_bytes: Option<u64> = None;
    let mut data_dir: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return fail("--addr needs HOST:PORT"),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threads = v,
                None => return fail("--threads needs a number"),
            },
            "--max-conns" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.max_conns = Some(v),
                None => return fail("--max-conns needs a number"),
            },
            "--max-bytes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_bytes = Some(v),
                None => return fail("--max-bytes needs a number"),
            },
            "--deadline-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.deadline = Some(std::time::Duration::from_millis(v)),
                None => return fail("--deadline-ms needs a number"),
            },
            "--batch" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => config.max_batch = v,
                _ => return fail("--batch needs a number >= 1"),
            },
            "--executors" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => config.executors = v,
                _ => return fail("--executors needs a number >= 1"),
            },
            "--data-dir" => match it.next() {
                Some(v) => data_dir = Some(v.clone()),
                None => return fail("--data-dir needs a directory path"),
            },
            other => return fail(&format!("unknown serve option `{other}`\n\n{}", usage())),
        }
    }
    let mut engine = Engine::with_parallelism(Parallelism::threads(threads));
    if let Some(cap) = max_bytes {
        engine = engine.with_max_registered_bytes(cap);
    }
    if let Some(dir) = &data_dir {
        engine = match engine.with_data_dir(dir) {
            Ok(e) => e,
            Err(e) => return fail(&format!("cannot open data dir {dir}: {e}")),
        };
    }
    let running = match serve_with(addr.as_str(), engine, config) {
        Ok(r) => r,
        Err(e) => return fail(&format!("cannot bind {addr}: {e}")),
    };
    println!("systec-serve listening on {}", running.addr());
    running.wait();
    println!("systec-serve stopped");
    ExitCode::SUCCESS
}

fn client_main(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut retry = 0u32;
    let mut requests: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return fail("--addr needs HOST:PORT"),
            },
            "--retry" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => retry = v,
                None => return fail("--retry needs a number"),
            },
            other => requests.push(other.to_string()),
        }
    }
    let Some(addr) = addr else {
        return fail("systec client needs --addr HOST:PORT");
    };
    let policy = RetryPolicy::with_attempts(retry + 1);
    let mut client = match Client::connect_with_retry(addr.as_str(), &policy) {
        Ok(c) => c,
        Err(e) => return fail(&format!("cannot connect to {addr}: {e}")),
    };
    let mut all_ok = true;
    let exchange = |client: &mut Client, line: &str| -> Result<bool, String> {
        let mut attempt = 0u32;
        loop {
            match client.send_raw(line) {
                Ok(response) => {
                    // Retryable error codes (deadline_exceeded,
                    // admission_rejected, internal_error) re-send the
                    // same line after backoff; everything else prints.
                    if attempt < retry && is_retryable_error_line(&response) {
                        std::thread::sleep(policy.delay(attempt));
                        attempt += 1;
                        continue;
                    }
                    println!("{response}");
                    // `ok:false` responses flip the exit code (scripted
                    // smoke tests assert on it), but the exchange
                    // continues.
                    return Ok(!response.starts_with("{\"ok\":false"));
                }
                Err(_) if attempt < retry => {
                    // The connection dropped mid-exchange: back off,
                    // reconnect, and re-send the same line. A failed
                    // reconnect is reported by the next send attempt.
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                    if let Ok(fresh) = Client::connect(addr.as_str()) {
                        *client = fresh;
                    }
                }
                Err(e) => return Err(e.to_string()),
            }
        }
    };
    if requests.is_empty() {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => return fail(&format!("reading stdin: {e}")),
            };
            if line.trim().is_empty() {
                continue;
            }
            match exchange(&mut client, &line) {
                Ok(ok) => all_ok &= ok,
                Err(e) => return fail(&e),
            }
        }
    } else {
        for line in &requests {
            match exchange(&mut client, line) {
                Ok(ok) => all_ok &= ok,
                Err(e) => return fail(&e),
            }
        }
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn route_main(args: &[String]) -> ExitCode {
    let mut listen = "127.0.0.1:7070".to_string();
    let mut shards: Vec<String> = Vec::new();
    let mut config = systec::router::RouterConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => match it.next() {
                Some(v) => listen = v.clone(),
                None => return fail("--listen needs HOST:PORT"),
            },
            "--shard" => match it.next() {
                Some(v) => shards.push(v.clone()),
                None => return fail("--shard needs HOST:PORT"),
            },
            "--vnodes" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => config.vnodes = v,
                _ => return fail("--vnodes needs a number >= 1"),
            },
            "--retry" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(v) => config.connect_retry = RetryPolicy::with_attempts(v + 1),
                None => return fail("--retry needs a number"),
            },
            other => return fail(&format!("unknown route option `{other}`\n\n{}", usage())),
        }
    }
    if shards.is_empty() {
        return fail("systec route needs at least one --shard HOST:PORT");
    }
    let running = match systec::router::route(listen.as_str(), &shards, config) {
        Ok(r) => r,
        Err(e) => return fail(&format!("cannot start router on {listen}: {e}")),
    };
    println!("systec-router listening on {}", running.addr());
    running.wait();
    println!("systec-router stopped");
    ExitCode::SUCCESS
}

/// One supervised worker process of `systec cluster`.
struct ClusterWorker {
    child: std::process::Child,
    /// The concrete loopback address the worker bound (port 0 resolved
    /// at first spawn; respawns reuse it so the ring stays stable).
    addr: String,
    data_dir: Option<String>,
}

/// Spawns one `systec serve` worker and reads its banner for the bound
/// address. The rest of its stdout is drained by a detached thread so
/// the worker's shutdown message never blocks or breaks the pipe.
fn spawn_cluster_worker(
    exe: &std::path::Path,
    addr: &str,
    threads: usize,
    data_dir: Option<&str>,
) -> Result<(std::process::Child, String), String> {
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("serve")
        .arg("--addr")
        .arg(addr)
        .arg("--threads")
        .arg(threads.to_string())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit());
    if let Some(dir) = data_dir {
        cmd.arg("--data-dir").arg(dir);
    }
    let mut child = cmd.spawn().map_err(|e| format!("cannot spawn worker: {e}"))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = std::io::BufReader::new(stdout);
    let mut banner = String::new();
    if reader.read_line(&mut banner).map_err(|e| format!("reading worker banner: {e}"))? == 0 {
        let _ = child.wait();
        return Err(format!("worker on {addr} exited before its banner"));
    }
    let bound = banner
        .trim()
        .rsplit(' ')
        .next()
        .ok_or_else(|| format!("malformed worker banner: {banner:?}"))?
        .to_string();
    std::thread::spawn(move || {
        let _ = std::io::copy(&mut reader, &mut std::io::sink());
    });
    Ok((child, bound))
}

fn cluster_main(args: &[String]) -> ExitCode {
    let mut shards = 2usize;
    let mut listen = "127.0.0.1:7070".to_string();
    let mut threads = 1usize;
    let mut data_dir: Option<String> = None;
    let mut config = systec::router::RouterConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => shards = v,
                _ => return fail("--shards needs a number >= 1"),
            },
            "--listen" => match it.next() {
                Some(v) => listen = v.clone(),
                None => return fail("--listen needs HOST:PORT"),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threads = v,
                None => return fail("--threads needs a number"),
            },
            "--data-dir" => match it.next() {
                Some(v) => data_dir = Some(v.clone()),
                None => return fail("--data-dir needs a directory path"),
            },
            "--vnodes" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => config.vnodes = v,
                _ => return fail("--vnodes needs a number >= 1"),
            },
            other => return fail(&format!("unknown cluster option `{other}`\n\n{}", usage())),
        }
    }
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => return fail(&format!("cannot locate the systec binary: {e}")),
    };
    let mut workers = Vec::with_capacity(shards);
    for k in 0..shards {
        let dir = data_dir.as_ref().map(|base| format!("{base}/shard-{k}"));
        match spawn_cluster_worker(&exe, "127.0.0.1:0", threads, dir.as_deref()) {
            Ok((child, addr)) => {
                println!("cluster shard {k}: {addr}");
                workers.push(ClusterWorker { child, addr, data_dir: dir });
            }
            Err(e) => return fail(&format!("shard {k}: {e}")),
        }
    }
    let shard_addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let running = match systec::router::route(listen.as_str(), &shard_addrs, config) {
        Ok(r) => r,
        Err(e) => return fail(&format!("cannot start router on {listen}: {e}")),
    };
    println!("systec-router listening on {}", running.addr());
    let shutdown = running.router().shutdown_flag();
    let workers = std::sync::Arc::new(std::sync::Mutex::new(workers));
    let supervised = std::sync::Arc::clone(&workers);
    let supervisor_exe = exe.clone();
    let supervisor = std::thread::spawn(move || {
        while !shutdown.load(std::sync::atomic::Ordering::SeqCst) {
            {
                let mut workers =
                    supervised.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                for (k, worker) in workers.iter_mut().enumerate() {
                    let exited = matches!(worker.child.try_wait(), Ok(Some(_)));
                    if !exited {
                        continue;
                    }
                    // The worker died without a shutdown: respawn it on
                    // its old port (and old durable registry) so the
                    // router's next reconnect finds it rejoined.
                    eprintln!("cluster shard {k} ({}) died; respawning", worker.addr);
                    match spawn_cluster_worker(
                        &supervisor_exe,
                        &worker.addr,
                        threads,
                        worker.data_dir.as_deref(),
                    ) {
                        Ok((child, addr)) => {
                            worker.child = child;
                            worker.addr = addr;
                            eprintln!("cluster shard {k} rejoined on {}", worker.addr);
                        }
                        Err(e) => eprintln!("cluster shard {k} respawn failed: {e}"),
                    }
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
    });
    running.wait();
    let _ = supervisor.join();
    // The shutdown broadcast already reached every live worker; reap.
    let mut workers = workers.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for worker in workers.iter_mut() {
        let _ = worker.child.wait();
    }
    println!("systec-cluster stopped");
    ExitCode::SUCCESS
}

fn top_main(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut interval_ms = 1000u64;
    let mut iters = 0u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return fail("--addr needs HOST:PORT"),
            },
            "--interval-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => interval_ms = v,
                None => return fail("--interval-ms needs a number"),
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => iters = v,
                None => return fail("--iters needs a number"),
            },
            other => return fail(&format!("unknown top option `{other}`\n\n{}", usage())),
        }
    }
    let Some(addr) = addr else {
        return fail("systec top needs --addr HOST:PORT");
    };
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => return fail(&format!("cannot connect to {addr}: {e}")),
    };
    let mut round = 0u64;
    loop {
        let resp = match client.request(&Request::Stats) {
            Ok(r) => r,
            Err(e) => return fail(&format!("stats request failed: {e}")),
        };
        let Response::Stats { cache, requests, pool, serve, kernels, slow } = resp else {
            return fail(&format!("unexpected stats reply: {resp:?}"));
        };
        render_top(&addr, &cache, &requests, &pool, &serve, &kernels, &slow);
        round += 1;
        if iters != 0 && round >= iters {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// One `systec top` refresh: a per-kernel latency table plus one-line
/// cache / pool / request summaries.
fn render_top(
    addr: &str,
    cache: &systec::serve::protocol::CachePayload,
    requests: &systec::serve::protocol::RequestCountsPayload,
    pool: &systec::serve::protocol::PoolPayload,
    serve: &systec::serve::protocol::ServePayload,
    kernels: &[systec::serve::protocol::KernelStatPayload],
    slow: &[systec::serve::protocol::SlowRunPayload],
) {
    let us = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.1}"));
    println!("systec top — {addr}");
    println!(
        "requests: register={} prepare={} run={} unregister={} stats={} metrics={} ping={} errors={}",
        requests.register_tensor,
        requests.prepare,
        requests.run,
        requests.unregister,
        requests.stats,
        requests.metrics,
        requests.ping,
        requests.errors
    );
    println!(
        "cache: hits={} misses={} builds={} evictions={} waits={} entries={}",
        cache.hits, cache.misses, cache.builds, cache.evictions, cache.waits, cache.entries
    );
    println!(
        "pool: workers={} submitted={} executed={} helped={} parks={} wakeups={}",
        pool.workers, pool.submitted, pool.executed, pool.helped, pool.parks, pool.wakeups
    );
    println!(
        "registry: tensors={} bytes={} evictions={} pinned={}",
        serve.registry_tensors, serve.registry_bytes, serve.registry_evictions, serve.pinned
    );
    println!(
        "serve: dispatches={} batched_runs={} queued={} rejected_conns={} rejected_bytes={} \
         deadline_exceeded={} stale_runs={}",
        serve.batch_dispatches,
        serve.batched_runs,
        serve.queued,
        serve.rejected_conns,
        serve.rejected_bytes,
        serve.deadline_exceeded,
        serve.stale_runs
    );
    println!(
        "faults: panics_caught={} quarantined={} journal: records={} bytes={} fsyncs={} \
         recovery: replayed={} truncated={}",
        serve.panics_caught,
        serve.quarantined_kernels,
        serve.journal_records,
        serve.journal_bytes,
        serve.journal_fsyncs,
        serve.recovery_replayed,
        serve.recovery_truncated
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6}  spec",
        "kernel", "runs", "p50us", "p90us", "p99us", "maxus", "slow"
    );
    for k in kernels {
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6}  {}",
            k.kernel,
            k.runs,
            us(k.median_us),
            us(k.p90_us),
            us(k.p99_us),
            us(k.max_us),
            k.slow,
            k.spec
        );
    }
    if !slow.is_empty() {
        let entries: Vec<String> =
            slow.iter().map(|s| format!("kernel {} {}us", s.kernel, s.us)).collect();
        println!("recent slow runs: {}", entries.join(", "));
    }
    println!();
}

/// Whether a raw response line decodes to an error with a retryable
/// code ([`systec::serve::protocol::ErrorCode::retryable`]).
fn is_retryable_error_line(line: &str) -> bool {
    matches!(
        Response::decode(line),
        Ok(Response::Error { code, .. }) if code.retryable()
    )
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let einsum = args.next().ok_or_else(|| usage().to_string())?;
    let mut opts = Options {
        einsum,
        symmetric: Vec::new(),
        run: false,
        n: 30,
        density: 0.01,
        rank: 8,
        seed: 42,
        backend: Backend::default(),
        threads: 1,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sym" => {
                // Declarations are validated against the einsum later,
                // by the shared `systec::kernels::parse_symmetry`.
                opts.symmetric.push(args.next().ok_or("--sym needs a tensor name")?);
            }
            "--run" => opts.run = true,
            "--backend" => {
                let b = args.next().ok_or("--backend needs `compiled` or `interpreter`")?;
                opts.backend = match b.as_str() {
                    "compiled" | "vm" => Backend::Compiled,
                    "interpreter" | "interp" => Backend::Interpreter,
                    other => {
                        return Err(format!(
                            "unknown backend `{other}` (expected `compiled` or `interpreter`)"
                        ))
                    }
                };
            }
            "--threads" => opts.threads = next_num(&mut args, "--threads")? as usize,
            "--n" => opts.n = next_num(&mut args, "--n")? as usize,
            "--rank" => opts.rank = next_num(&mut args, "--rank")? as usize,
            "--density" => opts.density = next_num(&mut args, "--density")?,
            "--seed" => opts.seed = next_num(&mut args, "--seed")? as u64,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown option `{other}`\n\n{}", usage())),
        }
    }
    Ok(opts)
}

fn next_num(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<f64, String> {
    args.next().and_then(|v| v.parse().ok()).ok_or_else(|| format!("{flag} needs a number"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return serve_main(&argv[1..]),
        Some("client") => return client_main(&argv[1..]),
        Some("route") => return route_main(&argv[1..]),
        Some("cluster") => return cluster_main(&argv[1..]),
        Some("top") => return top_main(&argv[1..]),
        _ => {}
    }
    let opts = match parse_args(argv.into_iter()) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let einsum = match parse_einsum(&opts.einsum) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot parse einsum: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match parse_symmetry(&einsum, &opts.symmetric) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("--sym: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let kernel = match Compiler::new().compile(&einsum, &spec) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("compilation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("== input ==\n{einsum}\n");
    println!("== generated kernel ==\n{}", kernel.program);
    if !kernel.chain.is_empty() {
        let chain: Vec<&str> = kernel.chain.iter().map(|i| i.name()).collect();
        println!("\ncanonical chain: {}", chain.join(" <= "));
    }
    if let Some(partition) = &kernel.output_partition {
        println!("output symmetry: {partition:?}");
    }

    if opts.run {
        if let Err(msg) = run_kernel(&einsum, &spec, &kernel, &opts) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Generates random inputs shaped by the einsum, runs the compiled kernel
/// against the naive baseline and the brute-force reference, and prints
/// times and counters.
fn run_kernel(
    einsum: &Einsum,
    spec: &SymmetrySpec,
    kernel: &systec::compiler::CompiledKernel,
    opts: &Options,
) -> Result<(), String> {
    let mut r = rng(opts.seed);
    let mut inputs: HashMap<String, Tensor> = HashMap::new();
    // Sparse-index extents get n; indices appearing only outside the
    // symmetric tensors (e.g. MTTKRP's j) get `rank`.
    let chain_or_sym: std::collections::BTreeSet<&str> = einsum
        .rhs
        .accesses()
        .iter()
        .filter(|a| spec.partition(&a.tensor.name).is_some())
        .flat_map(|a| a.indices.iter().map(|i| i.name()))
        .collect();
    let extent = |index: &systec::ir::Index| {
        if chain_or_sym.is_empty() || chain_or_sym.contains(index.name()) {
            opts.n
        } else {
            opts.rank
        }
    };
    for access in einsum.rhs.accesses() {
        let name = access.tensor.name.clone();
        if inputs.contains_key(&name) {
            continue;
        }
        let dims: Vec<usize> = access.indices.iter().map(extent).collect();
        let tensor = if spec.partition(&name).is_some() {
            // Symmetric: sample then symmetrize over the partition.
            let partition = spec.partition(&name).expect("checked");
            let mut coo = CooTensor::new(dims.clone());
            let total: f64 = dims.iter().map(|&d| d as f64).product();
            let draws = (opts.density * total).ceil() as usize;
            use rand::Rng;
            for _ in 0..draws.max(1) {
                let coords: Vec<usize> = dims.iter().map(|&d| r.gen_range(0..d)).collect();
                let v = r.gen_range(0.1..1.0);
                for perm in partition.permutations() {
                    let permuted: Vec<usize> = perm.iter().map(|&p| coords[p]).collect();
                    coo.set(&permuted, v);
                }
            }
            Tensor::Sparse(
                SparseTensor::from_coo(&coo, &csf(dims.len()))
                    .map_err(|e| format!("packing {name}: {e}"))?,
            )
        } else if access.rank() >= 2 && access.indices.iter().all(|i| extent(i) == opts.n) {
            // Square non-symmetric operands stay sparse (e.g. SSYRK's A).
            let mut coo = CooTensor::new(dims.clone());
            let total: f64 = dims.iter().map(|&d| d as f64).product();
            use rand::Rng;
            for _ in 0..((opts.density * total).ceil() as usize).max(1) {
                let coords: Vec<usize> = dims.iter().map(|&d| r.gen_range(0..d)).collect();
                coo.set(&coords, r.gen_range(0.1..1.0));
            }
            Tensor::Sparse(
                SparseTensor::from_coo(&coo, &csf(dims.len()))
                    .map_err(|e| format!("packing {name}: {e}"))?,
            )
        } else {
            Tensor::Dense(random_dense(dims, &mut r))
        };
        inputs.insert(name, tensor);
    }

    let parallelism = Parallelism::threads(opts.threads);
    let sym = Prepared::from_programs(kernel.main.clone(), kernel.replication.clone(), &inputs)
        .map_err(|e| format!("preparing compiled kernel: {e}"))?
        .with_backend(opts.backend)
        .with_parallelism(parallelism);
    if opts.backend == Backend::Compiled {
        if let Some(note) = serial_fallback_note(parallelism, sym.splittable()) {
            println!("{note}");
        }
    }
    let naive_prog = Compiler::new().naive(einsum);
    let naive = Prepared::from_programs(naive_prog, None, &inputs)
        .map_err(|e| format!("preparing naive kernel: {e}"))?
        .with_backend(opts.backend)
        .with_parallelism(parallelism);

    let t0 = std::time::Instant::now();
    let (out_sym, c_sym) = sym.run_full().map_err(|e| e.to_string())?;
    let t_sym = t0.elapsed();
    let t0 = std::time::Instant::now();
    let (out_naive, c_naive) = naive.run_full().map_err(|e| e.to_string())?;
    let t_naive = t0.elapsed();

    println!(
        "\n== run (n={}, density={}, seed={}, backend={:?}, parallelism={:?}) ==",
        opts.n, opts.density, opts.seed, opts.backend, parallelism
    );
    let out_name = einsum.output.tensor.display_name();
    let diff = out_sym[&out_name].max_abs_diff(&out_naive[&out_name]).map_err(|e| e.to_string())?;
    println!("max |systec - naive| = {diff:.3e}");
    let reference = reference_einsum(einsum, &inputs).map_err(|e| e.to_string())?;
    let ref_diff = out_sym[&out_name].max_abs_diff(&reference).map_err(|e| e.to_string())?;
    println!("max |systec - reference| = {ref_diff:.3e}");
    println!("systec: {t_sym:?}   naive: {t_naive:?}");
    println!("systec counters: {c_sym}");
    println!("naive  counters: {c_naive}");
    if diff > 1e-9 || ref_diff > 1e-9 {
        return Err("MISMATCH: compiled kernel disagrees with the baseline".to_string());
    }
    Ok(())
}
