//! Quadratic forms over a covariance matrix — the statistics motivation
//! from the paper's introduction: *"matrices expressing covariance …
//! are naturally symmetric"*.
//!
//! Computes portfolio variances `σ² = wᵀ Σ w` (SYPRD, §5.2.3) for a
//! batch of weight vectors over a sparse sample covariance matrix,
//! exploiting the matrix's symmetry to read only its upper triangle.
//!
//! ```sh
//! cargo run --release --example covariance_quadratic_form
//! ```

use rand::Rng;
use systec::kernels::{defs, native, Prepared};
use systec::tensor::generate::rng;
use systec::tensor::{CooTensor, DenseTensor};

fn main() {
    // Synthesize a sparse covariance matrix: a few latent factors give
    // block-ish correlations; thresholding keeps it sparse.
    let assets = 400;
    let factors = 10;
    let mut r = rng(99);
    let mut loadings: Vec<Vec<(usize, f64)>> = Vec::with_capacity(factors);
    for _ in 0..factors {
        let mut load = Vec::new();
        for a in 0..assets {
            if r.gen_bool(0.06) {
                load.push((a, r.gen_range(-1.0..1.0)));
            }
        }
        loadings.push(load);
    }
    let mut cov = CooTensor::new(vec![assets, assets]);
    for load in &loadings {
        for &(a, la) in load {
            for &(b, lb) in load {
                cov.push(&[a, b], la * lb);
            }
        }
    }
    for a in 0..assets {
        cov.push(&[a, a], r.gen_range(0.05..0.2)); // idiosyncratic variance
    }
    cov.prune_zeros();
    assert!(cov.is_fully_symmetric());
    println!("covariance: {assets} assets, {} stored entries", cov.nnz());

    let def = defs::syprd();
    let mut total_sym_reads = 0u64;
    let mut total_naive_reads = 0u64;
    for portfolio in 0..5 {
        // Random long-only weights, normalized.
        let mut w = vec![0.0; assets];
        for v in w.iter_mut() {
            *v = r.gen_range(0.0..1.0);
        }
        let sum: f64 = w.iter().sum();
        for v in w.iter_mut() {
            *v /= sum;
        }
        let weights = DenseTensor::from_vec(vec![assets], w).expect("shape");

        let inputs = def
            .inputs([("A", cov.clone().into()), ("x", weights.clone().into())])
            .expect("inputs pack");
        let sym = Prepared::compile(&def, &inputs).expect("prepare");
        let naive = Prepared::naive(&def, &inputs).expect("prepare naive");
        let (out_sym, cs) = sym.run_full().expect("run");
        let (out_naive, cn) = naive.run_full().expect("run naive");
        let variance = out_sym["y"].get(&[]);
        let check = native::csr_syprd(inputs["A"].as_sparse().unwrap(), &weights);
        assert!((variance - out_naive["y"].get(&[])).abs() < 1e-9);
        assert!((variance - check).abs() < 1e-9);
        total_sym_reads += cs.reads_of_family("A");
        total_naive_reads += cn.reads_of_family("A");
        println!(
            "portfolio {portfolio}: variance {variance:.6}, volatility {:.4}",
            variance.sqrt()
        );
    }
    println!(
        "covariance reads: symmetric {total_sym_reads} vs naive {total_naive_reads} ({:.2}x fewer)",
        total_naive_reads as f64 / total_sym_reads as f64
    );
}
