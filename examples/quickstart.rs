//! Quickstart: compile a symmetric kernel, inspect the generated code,
//! run it, and compare against the naive baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use systec::compiler::{Compiler, SymmetrySpec};
use systec::ir::build::*;
use systec::ir::{AssignOp, Einsum};
use systec::kernels::{defs, Prepared};
use systec::tensor::generate::{random_dense, rng, symmetric_erdos_renyi};

fn main() {
    // 1. Describe the kernel: SSYMV, y[i] += A[i,j] * x[j], A symmetric.
    let ssymv = Einsum::new(
        access("y", ["i"]),
        AssignOp::Add,
        mul([access("A", ["i", "j"]), access("x", ["j"])]),
        [idx("i"), idx("j")],
    );
    let symmetry = SymmetrySpec::new().with_full("A", 2);

    // 2. Compile and print the symmetry-exploiting program.
    let kernel = Compiler::new().compile(&ssymv, &symmetry).expect("ssymv compiles");
    println!("== SySTeC-generated SSYMV ==\n{}\n", kernel.program);
    println!("canonical chain: {:?}\n", kernel.chain.iter().map(|i| i.name()).collect::<Vec<_>>());

    // 3. Run on a random symmetric sparse matrix and compare with naive.
    let n = 2_000;
    let mut r = rng(42);
    let a = symmetric_erdos_renyi(n, 2, 2e-3, &mut r);
    let x = random_dense(vec![n], &mut r);
    println!("matrix: {n} x {n}, {} stored entries", a.nnz());

    let def = defs::ssymv();
    let inputs = def.inputs([("A", a.into()), ("x", x.into())]).expect("inputs pack");
    let symmetric = Prepared::compile(&def, &inputs).expect("prepare symmetric");
    let naive = Prepared::naive(&def, &inputs).expect("prepare naive");

    let t0 = std::time::Instant::now();
    let (y_sym, counters_sym) = symmetric.run_full().expect("run symmetric");
    let t_sym = t0.elapsed();
    let t0 = std::time::Instant::now();
    let (y_naive, counters_naive) = naive.run_full().expect("run naive");
    let t_naive = t0.elapsed();

    let diff = y_sym["y"].max_abs_diff(&y_naive["y"]).expect("same shape");
    println!("max |y_sym - y_naive| = {diff:.3e}");
    println!(
        "reads of A: symmetric {} vs naive {}  ({:.2}x fewer)",
        counters_sym.reads_of_family("A"),
        counters_naive.reads_of_family("A"),
        counters_naive.reads_of_family("A") as f64 / counters_sym.reads_of_family("A") as f64,
    );
    println!(
        "wall time: symmetric {t_sym:?} vs naive {t_naive:?}  ({:.2}x speedup)",
        t_naive.as_secs_f64() / t_sym.as_secs_f64()
    );
    assert!(diff < 1e-9, "symmetric and naive kernels must agree");
}
