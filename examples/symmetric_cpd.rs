//! Symmetric CP decomposition (CPD) of a 3-d symmetric sparse tensor via
//! alternating least-squares built on the SySTeC-compiled MTTKRP —
//! the paper's flagship application (§5.2.6): *"When the tensor is
//! symmetric … the symmetric CPD problem uses the same factor matrix for
//! all dimensions"*, so one symmetry-exploiting MTTKRP per sweep replaces
//! the usual N transposed kernels.
//!
//! ```sh
//! cargo run --release --example symmetric_cpd
//! ```

use systec::kernels::{defs, Prepared};
use systec::tensor::generate::{random_dense, rng, symmetric_erdos_renyi};
use systec::tensor::{DenseTensor, Tensor};

/// One ALS-style multiplicative sweep: B ← normalize(MTTKRP(A, B)).
/// (A full ALS solve would also invert the Gram matrix; the power-style
/// update keeps the example focused on the MTTKRP itself.)
fn sweep(prepared: &Prepared) -> (DenseTensor, u64) {
    let (out, counters) = prepared.run_full().expect("mttkrp");
    (out["C"].clone(), counters.reads_of_family("A"))
}

fn normalize_columns(m: &mut DenseTensor) {
    let (n, rank) = (m.dims()[0], m.dims()[1]);
    for r in 0..rank {
        let norm: f64 = (0..n).map(|i| m.get(&[i, r]).powi(2)).sum::<f64>().sqrt();
        if norm > 0.0 {
            for i in 0..n {
                let v = m.get(&[i, r]) / norm;
                m.set(&[i, r], v);
            }
        }
    }
}

/// Rank-`r` reconstruction error ‖T − Σ_r λ_r b_r⊗b_r⊗b_r‖ restricted to
/// the stored entries (cheap proxy for fit).
fn residual_on_support(t: &systec::tensor::CooTensor, b: &DenseTensor, lambda: &[f64]) -> f64 {
    let mut err = 0.0;
    for (coords, v) in t.entries() {
        let mut approx = 0.0;
        for (r, &l) in lambda.iter().enumerate() {
            approx += l * b.get(&[coords[0], r]) * b.get(&[coords[1], r]) * b.get(&[coords[2], r]);
        }
        err += (v - approx).powi(2);
    }
    err.sqrt()
}

fn main() {
    let n = 120;
    let rank = 6;
    let mut r = rng(2024);
    let tensor = symmetric_erdos_renyi(n, 3, 5e-4, &mut r);
    println!("symmetric 3-d tensor: {n}^3, {} stored entries", tensor.nnz());

    let def = defs::mttkrp(3);
    let mut b = random_dense(vec![n, rank], &mut r);
    normalize_columns(&mut b);

    let mut reads_total = 0u64;
    let mut lambda = vec![0.0; rank];
    for it in 0..12 {
        let inputs = def
            .inputs([("A", tensor.clone().into()), ("B", b.clone().into())])
            .expect("inputs pack");
        let prepared = Prepared::compile(&def, &inputs).expect("prepare");
        let (mut next, reads) = sweep(&prepared);
        reads_total += reads;
        // Column norms become the component weights λ_r.
        for (c, l) in lambda.iter_mut().enumerate() {
            *l = (0..n).map(|i| next.get(&[i, c]).powi(2)).sum::<f64>().sqrt();
        }
        normalize_columns(&mut next);
        b = next;
        let res = residual_on_support(&tensor, &b, &lambda);
        println!("sweep {it:2}: residual on support = {res:.4}");
    }
    println!("total reads of A across sweeps: {reads_total}");

    // Sanity: the compiled MTTKRP agrees with the naive one on the final
    // factors.
    let inputs =
        def.inputs([("A", tensor.clone().into()), ("B", b.clone().into())]).expect("inputs pack");
    let sym = Prepared::compile(&def, &inputs).expect("prepare");
    let naive = Prepared::naive(&def, &inputs).expect("prepare naive");
    let (cs, counters_sym) = sym.run_full().expect("run");
    let (cn, counters_naive) = naive.run_full().expect("run");
    let diff = cs["C"].max_abs_diff(&cn["C"]).expect("same shape");
    println!(
        "symmetric vs naive MTTKRP: max diff {diff:.3e}; reads of A {} vs {}",
        counters_sym.reads_of_family("A"),
        counters_naive.reads_of_family("A"),
    );
    assert!(diff < 1e-9);
    let _unused: Vec<Tensor> = Vec::new();
}
