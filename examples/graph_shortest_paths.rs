//! Single-source shortest paths on an undirected graph via repeated
//! symmetric Bellman-Ford updates (paper §5.2.2) — the graph-theory
//! motivation from the paper's introduction: adjacency matrices of
//! undirected graphs are symmetric.
//!
//! Each relaxation step is the min-plus kernel `y[i] min= A[i,j] + d[j]`
//! compiled by SySTeC to read only the upper triangle of the edge-weight
//! matrix.
//!
//! ```sh
//! cargo run --release --example graph_shortest_paths
//! ```

use rand::Rng;
use systec::kernels::{defs, native, Prepared};
use systec::tensor::generate::rng;
use systec::tensor::{CooTensor, DenseTensor};

fn main() {
    // Build a random connected undirected graph with positive weights:
    // a ring (for connectivity) plus random chords.
    let n = 500;
    let mut r = rng(7);
    let mut edges = CooTensor::new(vec![n, n]);
    for v in 0..n {
        let w = r.gen_range(1.0..4.0);
        edges.set(&[v, (v + 1) % n], w);
        edges.set(&[(v + 1) % n, v], w);
    }
    for _ in 0..3 * n {
        let (u, v) = (r.gen_range(0..n), r.gen_range(0..n));
        if u != v {
            let w = r.gen_range(1.0..10.0);
            edges.set(&[u, v], w);
            edges.set(&[v, u], w);
        }
    }
    assert!(edges.is_fully_symmetric());
    println!("graph: {n} vertices, {} directed edge entries", edges.nnz());

    let def = defs::bellman_ford();
    let inputs = def
        .inputs([("A", edges.clone().into()), ("d", DenseTensor::zeros(vec![n]).into())])
        .expect("inputs pack");

    // Distances start at 0 for the source, +inf elsewhere.
    let source = 0usize;
    let mut dist = DenseTensor::filled(vec![n], f64::INFINITY);
    dist.set(&[source], 0.0);

    // Relax until a fixpoint (at most n - 1 rounds).
    let mut rounds = 0;
    let mut total_reads = 0u64;
    for round in 1..n {
        let mut inputs_round = inputs.clone();
        inputs_round.insert("d".to_string(), systec::tensor::Tensor::Dense(dist.clone()));
        let mut step = Prepared::compile(&def, &inputs_round).expect("prepare");
        step.init_output("y", dist.clone());
        let (out, counters) = step.run_full().expect("relax");
        total_reads += counters.reads_of_family("A");
        let next = out["y"].clone();
        let changed = next.max_abs_diff(&dist).expect("same shape") > 0.0;
        dist = next;
        rounds = round;
        if !changed {
            break;
        }
    }
    println!("converged after {rounds} rounds, {total_reads} edge reads total");

    // Cross-check against the native baseline relaxation run to fixpoint.
    let a = systec::tensor::SparseTensor::from_coo(&edges, &systec::tensor::CSR).unwrap();
    let mut check = DenseTensor::filled(vec![n], f64::INFINITY);
    check.set(&[source], 0.0);
    loop {
        let next = native::csr_bellman_ford(&a, &check, &check);
        if next.max_abs_diff(&check).unwrap() == 0.0 {
            break;
        }
        check = next;
    }
    let diff = dist.max_abs_diff(&check).expect("same shape");
    println!("max difference vs native Bellman-Ford: {diff:.3e}");
    assert!(diff < 1e-9);

    let reachable = (0..n).filter(|&v| dist.get(&[v]).is_finite()).count();
    let furthest = (0..n)
        .filter(|&v| dist.get(&[v]).is_finite())
        .max_by(|&a, &b| dist.get(&[a]).total_cmp(&dist.get(&[b])))
        .expect("nonempty");
    println!(
        "all {reachable}/{n} vertices reached; furthest vertex {furthest} at distance {:.2}",
        dist.get(&[furthest])
    );
}
